// Tests for the observability subsystem: the span tracer (nesting, text and
// Chrome-JSON rendering), the log-scale latency histogram, the metrics
// registry (snapshot + JSON round-trip), their wiring through the Optimizer,
// and the EXPLAIN ANALYZE rendering on the paper's Figure-1 query.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "catalog/synthetic.h"
#include "exec/evaluator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "optimizer/optimizer.h"
#include "plan/explain.h"
#include "sql/parser.h"
#include "star/default_rules.h"
#include "storage/datagen.h"

namespace starburst {
namespace {

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON syntax checker, so "is valid JSON" is a
// real assertion rather than a substring probe.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    while (true) {
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(static_cast<unsigned char>(s_[pos_]))) return false;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' || s_[pos_] == 'e' ||
            s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    char* end = nullptr;
    std::string token = s_.substr(start, pos_ - start);
    std::strtod(token.c_str(), &end);
    return end == token.c_str() + token.size();
  }

  bool Literal(const char* word) {
    size_t n = std::string(word).size();
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

/// Extracts the number following `"key":` in a flat JSON rendering.
double ExtractNumber(const std::string& json, const std::string& key) {
  size_t at = json.find("\"" + key + "\":");
  EXPECT_NE(at, std::string::npos) << key << " not in " << json;
  if (at == std::string::npos) return -1.0;
  return std::strtod(json.c_str() + at + key.size() + 3, nullptr);
}

// ---------------------------------------------------------------------------
// Tracer

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer;
  EXPECT_FALSE(ShouldTrace(&tracer));
  EXPECT_FALSE(ShouldTrace(nullptr));
  {
    TraceSpan span(&tracer, TraceKind::kStar, "AccessRoot");
    EXPECT_FALSE(span.active());
    span.set_detail("ignored");
  }
  STARBURST_TRACE_SPAN(&tracer, TraceKind::kPhase, "noop");
  EXPECT_TRUE(tracer.events().empty());
}

TEST(TracerTest, SpansNestByDepthAndRecordDetails) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    TraceSpan outer(&tracer, TraceKind::kStar, "JoinRoot");
    ASSERT_TRUE(outer.active());
    {
      TraceSpan inner(&tracer, TraceKind::kAlternative, "merge");
      inner.set_detail("2 plan(s)");
      tracer.Instant(TraceKind::kCondition, "sortable", "true");
    }
    outer.set_detail("SAP size 2");
  }
  const std::vector<TraceEvent>& ev = tracer.events();
  ASSERT_EQ(ev.size(), 3u);
  // Events appear in begin order; nesting shows in depth.
  EXPECT_EQ(ev[0].label, "JoinRoot");
  EXPECT_EQ(ev[0].depth, 0);
  EXPECT_EQ(ev[0].detail, "SAP size 2");
  EXPECT_EQ(ev[1].label, "merge");
  EXPECT_EQ(ev[1].depth, 1);
  EXPECT_EQ(ev[1].detail, "2 plan(s)");
  EXPECT_EQ(ev[2].kind, TraceKind::kCondition);
  EXPECT_EQ(ev[2].depth, 2);  // instant inside the open 'merge' span
  EXPECT_EQ(ev[2].dur_us, 0);
  EXPECT_GE(ev[0].dur_us, ev[1].dur_us);  // outer encloses inner

  std::string text = tracer.ToText();
  EXPECT_NE(text.find("star JoinRoot"), std::string::npos) << text;
  EXPECT_NE(text.find("alt merge"), std::string::npos);
  EXPECT_NE(text.find("cond sortable"), std::string::npos);
  // Indentation grows with depth.
  EXPECT_LT(text.find("star JoinRoot"), text.find("alt merge"));

  tracer.Clear();
  EXPECT_TRUE(tracer.events().empty());
}

TEST(TracerTest, ChromeJsonIsValidAndEscapesLabels) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    TraceSpan span(&tracer, TraceKind::kGlue,
                   "Resolve \"quoted\" \\ back\nslash");
    span.set_detail("ctl\x01char and \ttab");
  }
  tracer.Instant(TraceKind::kPlanTable, "prune #3 JOIN(NL)");
  std::string json = tracer.ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(TracerTest, ChromeJsonEscapesEverySpecialInLabelsAndDetails) {
  // Regression: labels and detail strings flow into the JSON verbatim-ish;
  // each JSON special must come out as its escape, and raw control bytes as
  // \u00XX (an unescaped one makes the file unloadable in a trace viewer).
  Tracer tracer;
  tracer.set_enabled(true);
  {
    TraceSpan span(&tracer, TraceKind::kStar, "quote:\" slash:\\");
    span.set_detail(std::string("nl:\n tab:\t cr:\r ctl:\x02 nul:") +
                    '\x01');
  }
  std::string json = tracer.ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("quote:\\\" slash:\\\\"), std::string::npos) << json;
  EXPECT_NE(json.find("nl:\\n tab:\\t cr:\\r"), std::string::npos) << json;
  EXPECT_NE(json.find("ctl:\\u0002"), std::string::npos) << json;
  EXPECT_NE(json.find("\\u0001"), std::string::npos) << json;
  // No raw control bytes survive anywhere in the output.
  for (char c : json) {
    ASSERT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

// ---------------------------------------------------------------------------
// LatencyHistogram

TEST(LatencyHistogramTest, EmptyHistogramReportsZeros) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
}

TEST(LatencyHistogramTest, RepeatedValueIsExactAtEveryQuantile) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.Record(7.0);
  EXPECT_EQ(h.count(), 100);
  EXPECT_DOUBLE_EQ(h.sum(), 700.0);
  EXPECT_DOUBLE_EQ(h.min(), 7.0);
  EXPECT_DOUBLE_EQ(h.max(), 7.0);
  // Percentiles are clamped to [min, max], so a constant stream is exact.
  EXPECT_DOUBLE_EQ(h.Percentile(0.50), 7.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 7.0);
}

TEST(LatencyHistogramTest, PercentilesTrackAUniformDistribution) {
  LatencyHistogram h;
  for (int v = 1; v <= 1000; ++v) h.Record(static_cast<double>(v));
  // Log-bucketed with 4 sub-buckets per doubling: <= ~19% relative error,
  // allow 25% slack.
  EXPECT_NEAR(h.Percentile(0.50), 500.0, 125.0);
  EXPECT_NEAR(h.Percentile(0.95), 950.0, 240.0);
  EXPECT_NEAR(h.Percentile(0.99), 990.0, 250.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_NEAR(h.mean(), 500.5, 1e-9);
  // Quantiles are monotone.
  EXPECT_LE(h.Percentile(0.5), h.Percentile(0.95));
  EXPECT_LE(h.Percentile(0.95), h.Percentile(0.99));

  h.Reset();
  EXPECT_EQ(h.count(), 0);
}

TEST(LatencyHistogramTest, SubMicrosecondSamplesStayInsideBucketZero) {
  // Bucket 0 holds everything in [0, 2^(1/4)); its lower bound is 0, so
  // interpolation cannot inflate a quantile of sub-microsecond data past the
  // bucket (the old lower bound of 2^0 = 1.0 contradicted BucketOf).
  LatencyHistogram h;
  for (int i = 1; i <= 10; ++i) h.Record(i / 10.0);  // 0.1 .. 1.0
  EXPECT_EQ(h.count(), 10);
  for (double q : {0.1, 0.5, 0.9}) {
    double v = h.Percentile(q);
    EXPECT_GE(v, h.min()) << "q=" << q;
    EXPECT_LE(v, h.max()) << "q=" << q;
  }
  // A constant sub-microsecond stream reports that exact value.
  LatencyHistogram constant;
  for (int i = 0; i < 50; ++i) constant.Record(0.5);
  EXPECT_DOUBLE_EQ(constant.Percentile(0.5), 0.5);
  EXPECT_DOUBLE_EQ(constant.Percentile(0.99), 0.5);
}

TEST(LatencyHistogramTest, QuantileEdgesAreExactObservations) {
  LatencyHistogram h;
  for (double v : {3.0, 40.0, 500.0, 6000.0}) h.Record(v);
  // q=0 is the minimum and q=1 the maximum — exact observations, not
  // bucket interpolations (nearest-rank alone would upper-bias q=0 inside
  // the first occupied bucket).
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 6000.0);
  // Out-of-range quantiles clamp to the same edges.
  EXPECT_DOUBLE_EQ(h.Percentile(-0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.5), 6000.0);
}

TEST(LatencyHistogramTest, SingleSampleIsEveryQuantile) {
  LatencyHistogram h;
  h.Record(123.0);
  for (double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(q), 123.0) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, BucketBoundarySamplesStayWithinMinMax) {
  // Exact powers of two sit on bucket boundaries; interpolation must never
  // step outside the observed range on either side.
  LatencyHistogram h;
  for (double v : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) h.Record(v);
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    double v = h.Percentile(q);
    EXPECT_GE(v, h.min()) << "q=" << q;
    EXPECT_LE(v, h.max()) << "q=" << q;
  }
  // Quantiles stay monotone across the boundaries.
  double prev = h.Percentile(0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    double v = h.Percentile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(LatencyHistogramTest, NegativeAndNanSamplesAreDroppedNotCoerced) {
  LatencyHistogram h;
  h.Record(-5.0);
  h.Record(std::numeric_limits<double>::quiet_NaN());
  h.Record(2.0);
  // The bogus samples are tallied separately, not folded into the stats as
  // zeros (which would silently drag down min/mean).
  EXPECT_EQ(h.count(), 1);
  EXPECT_EQ(h.dropped(), 2);
  EXPECT_DOUBLE_EQ(h.sum(), 2.0);
  EXPECT_DOUBLE_EQ(h.min(), 2.0);
  EXPECT_DOUBLE_EQ(h.mean(), 2.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 2.0);

  h.Reset();
  EXPECT_EQ(h.dropped(), 0);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistryTest, SnapshotAndJsonRoundTripValues) {
  MetricsRegistry metrics;
  metrics.AddCounter("star.refs", 3);
  metrics.AddCounter("star.refs", 4);
  metrics.AddCounter("glue.calls", 11);
  metrics.SetGauge("optimizer.plans_in_table", 42.5);
  for (int i = 1; i <= 4; ++i) {
    metrics.RecordLatency("optimizer.phase.glue", 100.0 * i);
  }

  EXPECT_EQ(metrics.counter("star.refs"), 7);
  EXPECT_EQ(metrics.counter("unknown"), 0);
  EXPECT_DOUBLE_EQ(metrics.gauge("optimizer.plans_in_table"), 42.5);
  ASSERT_NE(metrics.histogram("optimizer.phase.glue"), nullptr);
  EXPECT_EQ(metrics.histogram("unknown"), nullptr);

  MetricsRegistry::Snapshot snap = metrics.TakeSnapshot();
  EXPECT_EQ(snap.counters.at("star.refs"), 7);
  EXPECT_EQ(snap.counters.at("glue.calls"), 11);
  EXPECT_DOUBLE_EQ(snap.gauges.at("optimizer.plans_in_table"), 42.5);
  const auto& hist = snap.histograms.at("optimizer.phase.glue");
  EXPECT_EQ(hist.count, 4);
  EXPECT_DOUBLE_EQ(hist.sum, 1000.0);
  EXPECT_DOUBLE_EQ(hist.min, 100.0);
  EXPECT_DOUBLE_EQ(hist.max, 400.0);

  std::string json = metrics.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  // The JSON rendering carries the same values the snapshot reported.
  EXPECT_DOUBLE_EQ(ExtractNumber(json, "star.refs"), 7.0);
  EXPECT_DOUBLE_EQ(ExtractNumber(json, "optimizer.plans_in_table"), 42.5);
  EXPECT_DOUBLE_EQ(ExtractNumber(json, "count"), 4.0);

  std::string text = snap.ToText();
  EXPECT_NE(text.find("star.refs"), std::string::npos) << text;
  EXPECT_NE(text.find("p95"), std::string::npos);

  metrics.Reset();
  EXPECT_EQ(metrics.counter("star.refs"), 0);
  EXPECT_EQ(metrics.histogram("optimizer.phase.glue"), nullptr);
}

TEST(MetricsRegistryTest, DroppedSamplesSurfaceInSnapshotAndJson) {
  MetricsRegistry metrics;
  metrics.RecordLatency("phase", -1.0);
  metrics.RecordLatency("phase", 3.0);
  MetricsRegistry::Snapshot snap = metrics.TakeSnapshot();
  EXPECT_EQ(snap.histograms.at("phase").count, 1);
  EXPECT_EQ(snap.histograms.at("phase").dropped, 1);
  std::string json = metrics.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_DOUBLE_EQ(ExtractNumber(json, "dropped"), 1.0);
}

TEST(MetricsRegistryTest, PrometheusExpositionMangledAndTyped) {
  MetricsRegistry metrics;
  metrics.AddCounter("exec.rows_returned", 42);
  metrics.SetGauge("exec.peak_bytes", 1536.0);
  metrics.SetGauge("0weird name!", 1.0);  // leading digit + bad chars
  for (int i = 1; i <= 4; ++i) {
    metrics.RecordLatency("optimizer.phase.glue", 100.0 * i);
  }
  std::string prom = metrics.TakeSnapshot().ToPrometheus();

  // Dots mangle to underscores, with a # TYPE line per metric.
  EXPECT_NE(prom.find("# TYPE exec_rows_returned counter\n"
                      "exec_rows_returned 42\n"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("# TYPE exec_peak_bytes gauge\nexec_peak_bytes 1536\n"),
            std::string::npos)
      << prom;
  // A leading digit is prefixed so the name stays legal.
  EXPECT_NE(prom.find("_0weird_name_ 1\n"), std::string::npos) << prom;
  // Histograms export as summaries: quantile samples plus _sum/_count.
  EXPECT_NE(prom.find("# TYPE optimizer_phase_glue_us summary"),
            std::string::npos);
  EXPECT_NE(prom.find("optimizer_phase_glue_us{quantile=\"0.5\"} "),
            std::string::npos);
  EXPECT_NE(prom.find("optimizer_phase_glue_us{quantile=\"0.99\"} "),
            std::string::npos);
  EXPECT_NE(prom.find("optimizer_phase_glue_us_sum 1000\n"),
            std::string::npos);
  EXPECT_NE(prom.find("optimizer_phase_glue_us_count 4\n"),
            std::string::npos);
  // Every line is either a comment or `name[{labels}] value`.
  size_t start = 0;
  while (start < prom.size()) {
    size_t end = prom.find('\n', start);
    ASSERT_NE(end, std::string::npos) << "unterminated line";
    std::string line = prom.substr(start, end - start);
    if (line[0] != '#') {
      size_t space = line.rfind(' ');
      ASSERT_NE(space, std::string::npos) << line;
      char* parse_end = nullptr;
      std::strtod(line.c_str() + space + 1, &parse_end);
      EXPECT_EQ(*parse_end, '\0') << line;
    }
    start = end + 1;
  }
}

TEST(MetricsRegistryTest, PrometheusOmitsEmptySummariesAndSpellsNonFinite) {
  MetricsRegistry metrics;
  // Every sample dropped as invalid: the histogram exists (count 0,
  // dropped 1) but rendering its summary would publish quantile samples of
  // 0us that were never measured. The exposition must omit it entirely.
  metrics.RecordLatency("phase", -1.0);
  metrics.SetGauge("exec.ratio", std::numeric_limits<double>::quiet_NaN());
  metrics.SetGauge("exec.ceiling", std::numeric_limits<double>::infinity());
  metrics.SetGauge("exec.floor", -std::numeric_limits<double>::infinity());
  MetricsRegistry::Snapshot snap = metrics.TakeSnapshot();
  ASSERT_EQ(snap.histograms.at("phase").count, 0);
  EXPECT_EQ(snap.histograms.at("phase").dropped, 1);
  std::string prom = snap.ToPrometheus();
  EXPECT_EQ(prom.find("phase_us"), std::string::npos) << prom;
  // Non-finite gauges use the exposition spellings, not printf artifacts
  // like "nan"/"inf" (which Prometheus would reject) or a fabricated 0.
  EXPECT_NE(prom.find("exec_ratio NaN\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("exec_ceiling +Inf\n"), std::string::npos) << prom;
  EXPECT_NE(prom.find("exec_floor -Inf\n"), std::string::npos) << prom;
}

TEST(MetricsRegistryTest, ScopedTimerRecordsHistogramAndGauge) {
  MetricsRegistry metrics;
  {
    ScopedTimer timer(&metrics, "parse");
  }
  ASSERT_NE(metrics.histogram("parse"), nullptr);
  EXPECT_EQ(metrics.histogram("parse")->count(), 1);
  EXPECT_GE(metrics.gauge("parse.last_us"), 0.0);

  ScopedTimer twice(&metrics, "parse");
  twice.Stop();
  twice.Stop();  // idempotent
  EXPECT_EQ(metrics.histogram("parse")->count(), 2);

  ScopedTimer noop(nullptr, "ignored");  // null registry must be safe
}

// ---------------------------------------------------------------------------
// End-to-end: tracer + metrics through the Optimizer, and EXPLAIN ANALYZE.

class ObsEndToEndTest : public ::testing::Test {
 protected:
  ObsEndToEndTest()
      : catalog_(MakePaperCatalog()),
        query_(ParseSql(catalog_,
                        "SELECT EMP.NAME, EMP.ADDRESS FROM DEPT, EMP WHERE "
                        "DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO")
                   .ValueOrDie()) {}

  Catalog catalog_;
  Query query_;
};

TEST_F(ObsEndToEndTest, OptimizerEmitsTraceAndPublishesMetrics) {
  Tracer tracer;
  tracer.set_enabled(true);
  MetricsRegistry metrics;
  OptimizerOptions opts;
  opts.tracer = &tracer;
  opts.metrics = &metrics;
  Optimizer optimizer(DefaultRuleSet(), opts);
  auto result = optimizer.Optimize(query_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The trace covers every layer: phases, STAR firings, alternatives, glue
  // resolutions, plan-table decisions, and the enumerator.
  bool saw[9] = {};
  for (const TraceEvent& ev : tracer.events()) {
    saw[static_cast<int>(ev.kind)] = true;
  }
  EXPECT_TRUE(saw[static_cast<int>(TraceKind::kPhase)]);
  EXPECT_TRUE(saw[static_cast<int>(TraceKind::kStar)]);
  EXPECT_TRUE(saw[static_cast<int>(TraceKind::kAlternative)]);
  EXPECT_TRUE(saw[static_cast<int>(TraceKind::kGlue)]);
  EXPECT_TRUE(saw[static_cast<int>(TraceKind::kPlanTable)]);
  EXPECT_TRUE(saw[static_cast<int>(TraceKind::kEnumerator)]);

  std::string text = tracer.ToText();
  EXPECT_NE(text.find("phase enumeration"), std::string::npos);
  EXPECT_NE(text.find("phase glue"), std::string::npos);
  EXPECT_NE(text.find("phase costing"), std::string::npos);
  EXPECT_TRUE(JsonChecker(tracer.ToChromeJson()).Valid());

  // The registry mirrors the per-run structs (compatibility view intact).
  const OptimizeResult& r = result.value();
  EXPECT_EQ(metrics.counter("star.refs"), r.engine_metrics.star_refs);
  EXPECT_EQ(metrics.counter("glue.calls"), r.glue_metrics.calls);
  EXPECT_EQ(metrics.counter("plan_table.kept"), r.table_stats.kept);
  EXPECT_EQ(metrics.counter("enumerator.join_root_refs"),
            r.enumerator_stats.join_root_refs);
  EXPECT_EQ(metrics.counter("optimizer.runs"), 1);
  EXPECT_GT(metrics.gauge("optimizer.plans_in_table"), 0.0);
  for (const char* phase : {"optimizer.phase.enumeration",
                            "optimizer.phase.glue",
                            "optimizer.phase.costing",
                            "optimizer.optimize"}) {
    ASSERT_NE(metrics.histogram(phase), nullptr) << phase;
    EXPECT_EQ(metrics.histogram(phase)->count(), 1) << phase;
  }

  // A second run with tracing off records no new events but keeps counting.
  tracer.Clear();
  tracer.set_enabled(false);
  ASSERT_TRUE(optimizer.Optimize(query_).ok());
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(metrics.counter("optimizer.runs"), 2);
  EXPECT_EQ(metrics.counter("star.refs"), 2 * r.engine_metrics.star_refs);
}

TEST_F(ObsEndToEndTest, ExplainAnalyzeShowsActualVsEstimatedOnFigure1) {
  Optimizer optimizer(DefaultRuleSet());
  auto result = optimizer.Optimize(query_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const PlanPtr& best = result.value().best;

  Database db(catalog_);
  ASSERT_TRUE(PopulatePaperDatabase(&db, /*seed=*/7, /*scale=*/0.02).ok());
  PlanRunStats stats;
  auto rs = ExecutePlanAnalyzed(db, query_, best, &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();

  // Every operator that ran has actuals (an inner under an empty outer may
  // legitimately never execute, so <=, not ==).
  EXPECT_GE(stats.size(), 1u);
  EXPECT_LE(static_cast<int64_t>(stats.size()), best->CountNodes());
  const OpRunStats& root = stats.at(best.get());
  EXPECT_EQ(root.invocations, 1);
  EXPECT_EQ(root.rows, static_cast<int64_t>(rs.value().rows.size()));
  EXPECT_GE(root.wall_micros, 0.0);

  ExplainOptions opts;
  opts.analyze = true;
  opts.run_stats = &stats;
  std::string text = ExplainPlan(*best, query_, opts);
  EXPECT_NE(text.find("actual rows="), std::string::npos) << text;
  EXPECT_NE(text.find("est="), std::string::npos);
  EXPECT_NE(text.find("q-err="), std::string::npos);
  EXPECT_NE(text.find("time="), std::string::npos);
  // The root line reports the true result cardinality.
  std::string root_actual =
      "actual rows=" + std::to_string(rs.value().rows.size());
  EXPECT_NE(text.find(root_actual), std::string::npos) << text;

  // Analyze off (or no stats) renders the plain explain.
  EXPECT_EQ(ExplainPlan(*best, query_).find("actual rows="),
            std::string::npos);
  ExplainOptions no_stats;
  no_stats.analyze = true;
  EXPECT_EQ(ExplainPlan(*best, query_, no_stats).find("actual rows="),
            std::string::npos);
}

}  // namespace
}  // namespace starburst
