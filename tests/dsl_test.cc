// Tests for the STAR rule DSL: parsing, error reporting, and — the key
// property — that the text form of the default rule base is *equivalent* to
// the built-in builder form: same plan space, same costs, same winner.

#include <gtest/gtest.h>

#include "catalog/synthetic.h"
#include "optimizer/optimizer.h"
#include "plan/explain.h"
#include "plan/operator.h"
#include "properties/property_functions.h"
#include "sql/parser.h"
#include "star/default_rules.h"
#include "star/dsl_parser.h"

namespace starburst {
namespace {

TEST(DslParserTest, ParsesMinimalStar) {
  auto stars = ParseRules(R"(
    star Simple(T, P)
      alt 'only':
        TableAccess(T, P)
    end
  )");
  ASSERT_TRUE(stars.ok()) << stars.status().ToString();
  ASSERT_EQ(stars.value().size(), 1u);
  const Star& s = stars.value()[0];
  EXPECT_EQ(s.name, "Simple");
  EXPECT_FALSE(s.exclusive);
  ASSERT_EQ(s.params.size(), 2u);
  ASSERT_EQ(s.alternatives.size(), 1u);
  EXPECT_EQ(s.alternatives[0].label, "only");
  EXPECT_EQ(s.alternatives[0].body->kind(), RuleExprKind::kStarRef);
}

TEST(DslParserTest, ParsesExclusiveConditionsAndWheres) {
  auto stars = ParseRules(R"(
    star exclusive Pick(T, P)
      where JP = join_preds(P, T, T)
      alt 'a' where X = union(JP, {}) if nonempty(X):
        Other(T, X)
      alt 'b':
        Other(T, P)
    end
  )");
  ASSERT_TRUE(stars.ok()) << stars.status().ToString();
  const Star& s = stars.value()[0];
  EXPECT_TRUE(s.exclusive);
  ASSERT_EQ(s.lets.size(), 1u);
  EXPECT_EQ(s.lets[0].first, "JP");
  ASSERT_EQ(s.alternatives.size(), 2u);
  EXPECT_NE(s.alternatives[0].condition, nullptr);
  ASSERT_EQ(s.alternatives[0].lets.size(), 1u);
  EXPECT_EQ(s.alternatives[1].condition, nullptr);
}

TEST(DslParserTest, ParsesOpRefsWithFlavorsAndNamedArgs) {
  auto stars = ParseRules(R"(
    star Aa(T, P)
      alt 'x':
        JOIN:NL(Glue(T, {}), Glue(T, P); join_preds = P, residual_preds = {})
    end
  )");
  ASSERT_TRUE(stars.ok()) << stars.status().ToString();
  const RuleExprPtr& body = stars.value()[0].alternatives[0].body;
  EXPECT_EQ(body->kind(), RuleExprKind::kOpRef);
  EXPECT_EQ(body->name(), "JOIN");
  EXPECT_EQ(body->flavor(), "NL");
  EXPECT_EQ(body->args().size(), 2u);
  EXPECT_EQ(body->named_args().size(), 2u);
  EXPECT_EQ(body->args()[0]->kind(), RuleExprKind::kGlue);
}

TEST(DslParserTest, ParsesRequirementsAndForall) {
  auto stars = ParseRules(R"(
    star Rr(T1, T2, P, s)
      alt 'req':
        Sited(T1[site = s], T2[order = sort_cols(P, T2), temp], P)
      alt 'fa':
        forall i in indexes_on(T1) do IndexAccess(T1, P, i)
      alt 'path':
        Other(T2[paths >= index_cols(P, P, T2)], P)
    end
  )");
  ASSERT_TRUE(stars.ok()) << stars.status().ToString();
  const Star& s = stars.value()[0];
  const RuleExprPtr& req = s.alternatives[0].body;
  ASSERT_EQ(req->kind(), RuleExprKind::kStarRef);
  EXPECT_EQ(req->args()[0]->kind(), RuleExprKind::kRequire);
  EXPECT_EQ(req->args()[0]->req_kind(), ReqKind::kSite);
  // T2 has two chained requirements: order then temp.
  EXPECT_EQ(req->args()[1]->kind(), RuleExprKind::kRequire);
  EXPECT_EQ(req->args()[1]->req_kind(), ReqKind::kTemp);
  EXPECT_EQ(req->args()[1]->args()[0]->kind(), RuleExprKind::kRequire);
  EXPECT_EQ(req->args()[1]->args()[0]->req_kind(), ReqKind::kOrder);

  EXPECT_EQ(s.alternatives[1].body->kind(), RuleExprKind::kForEach);
  EXPECT_EQ(s.alternatives[2].body->args()[0]->req_kind(), ReqKind::kPath);
}

TEST(DslParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseRules("star lower(T) alt 'x': T end").ok());
  EXPECT_FALSE(ParseRules("star NoAlts(T) end").ok());
  EXPECT_FALSE(ParseRules("star A(T) alt 'x': T").ok());        // missing end
  EXPECT_FALSE(ParseRules("star A(T) alt missing: T end").ok()); // no label
  EXPECT_FALSE(ParseRules("star A(T) alt 'x': T[weird = 1] end").ok());
  EXPECT_FALSE(ParseRules("star A(T) alt 'x': JOIN:NL(T,").ok());
  EXPECT_FALSE(ParseRules("star A(T) alt 'x': 'unterminated").ok());
}

TEST(DslParserTest, ReplacingAStarOverridesIt) {
  RuleSet rules = DefaultRuleSet();
  int before = rules.size();
  ASSERT_TRUE(LoadRules(&rules, R"(
    star JoinRoot(T1, T2, P)
      alt 'only-as-given':
        PermutedJoin(T1, T2, P)
    end
  )").ok());
  EXPECT_EQ(rules.size(), before);
  auto jr = rules.Find("JoinRoot");
  ASSERT_TRUE(jr.ok());
  EXPECT_EQ(jr.value()->alternatives.size(), 1u);
  EXPECT_EQ(jr.value()->alternatives[0].label, "only-as-given");
}

// --- load-time validation --------------------------------------------------

TEST(DslValidationTest, RejectsDuplicateStarInOneText) {
  RuleSet rules = DefaultRuleSet();
  Status st = LoadRules(&rules, R"(
    star Twice(T, P)
      alt 'a':
        TableAccess(T, P)
    end
    star Twice(T, P)
      alt 'b':
        TableAccess(T, P)
    end
  )");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("'Twice'"), std::string::npos)
      << st.ToString();
  EXPECT_NE(st.ToString().find("defined twice"), std::string::npos)
      << st.ToString();
  // Nothing from the rejected batch was installed.
  EXPECT_FALSE(rules.Find("Twice").ok());
}

TEST(DslValidationTest, RejectsUndefinedStarReference) {
  RuleSet rules;  // empty: nothing to resolve against
  Status st = LoadRules(&rules, R"(
    star Caller(T, P)
      alt 'only':
        NoSuchStar(T, P)
    end
  )");
  ASSERT_FALSE(st.ok());
  std::string text = st.ToString();
  EXPECT_NE(text.find("'Caller'"), std::string::npos) << text;
  EXPECT_NE(text.find("'NoSuchStar'"), std::string::npos) << text;
  EXPECT_NE(text.find("line"), std::string::npos) << text;
  EXPECT_EQ(rules.size(), 0);
}

TEST(DslValidationTest, RejectsArityMismatch) {
  RuleSet rules = DefaultRuleSet();
  // TableAccess takes (T, P); call it with one argument.
  Status st = LoadRules(&rules, R"(
    star Caller(T, P)
      alt 'only':
        TableAccess(T)
    end
  )");
  ASSERT_FALSE(st.ok());
  std::string text = st.ToString();
  EXPECT_NE(text.find("'TableAccess'"), std::string::npos) << text;
  EXPECT_NE(text.find("1 argument"), std::string::npos) << text;
  EXPECT_NE(text.find("takes 2"), std::string::npos) << text;
}

TEST(DslValidationTest, RejectsUnregisteredLolepop) {
  RuleSet rules = DefaultRuleSet();
  Status st = LoadRules(&rules, R"(
    star Caller(T, P)
      alt 'only':
        FROBNICATE(Glue(T, {}))
    end
  )");
  ASSERT_FALSE(st.ok());
  std::string text = st.ToString();
  EXPECT_NE(text.find("'FROBNICATE'"), std::string::npos) << text;
  EXPECT_NE(text.find("line"), std::string::npos) << text;
}

TEST(DslValidationTest, AcceptsCustomLolepopWithProvidedRegistry) {
  OperatorRegistry operators;
  ASSERT_TRUE(RegisterBuiltinOperators(&operators).ok());
  OperatorDef def;
  def.name = "FROBNICATE";
  def.min_inputs = 1;
  def.max_inputs = 1;
  def.property_fn = [](const OpContext& ctx) -> Result<PropertyVector> {
    return *ctx.inputs[0];
  };
  ASSERT_TRUE(operators.Register(std::move(def)).ok());
  const std::string text = R"(
    star Caller(T, P)
      alt 'only':
        FROBNICATE(Glue(T, {}))
    end
  )";
  RuleSet rules = DefaultRuleSet();
  EXPECT_FALSE(LoadRules(&rules, text).ok());  // builtin registry: unknown
  Status st = LoadRules(&rules, text, &operators);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(rules.Find("Caller").ok());
}

TEST(DslValidationTest, BatchMayReferenceAlreadyLoadedStars) {
  RuleSet rules = DefaultRuleSet();
  // JMeth exists in the default rule base; references within the batch to
  // other batch members must also resolve (in either order).
  Status st = LoadRules(&rules, R"(
    star First(T1, T2, P)
      alt 'fwd':
        Second(T1, T2, P)
    end
    star Second(T1, T2, P)
      alt 'dispatch':
        JMeth(T1, T2, P)
    end
  )");
  EXPECT_TRUE(st.ok()) << st.ToString();
}

// --- equivalence of the DSL file and the builder rule base ----------------

class DslEquivalenceTest : public ::testing::Test {
 protected:
  static RuleSet LoadDefaultDsl() {
    RuleSet rules;
    Status st =
        LoadRulesFromFile(&rules, std::string(STARBURST_RULES_DIR) +
                                      "/default.star");
    EXPECT_TRUE(st.ok()) << st.ToString();
    return rules;
  }
};

TEST_F(DslEquivalenceTest, DefaultFileParses) {
  RuleSet rules = LoadDefaultDsl();
  for (const char* name :
       {"AccessRoot", "TableAccess", "IndexAccess", "TidSortAccess",
        "AndIndexAccess", "TempAccess", "JoinRoot", "PermutedJoin",
        "RemoteJoin", "SitedJoin", "JMeth"}) {
    EXPECT_TRUE(rules.Find(name).ok()) << name;
  }
  // The DSL file carries the full repertoire: 6 JMeth alternatives.
  EXPECT_EQ(rules.Find("JMeth").ValueOrDie()->alternatives.size(), 6u);
}

TEST_F(DslEquivalenceTest, DslAndBuilderProduceTheSamePlanSpace) {
  Catalog catalog = MakePaperCatalog();
  Query query = ParseSql(catalog,
                         "SELECT EMP.NAME FROM DEPT, EMP WHERE "
                         "DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO")
                    .ValueOrDie();

  DefaultRuleOptions all;
  all.merge_join = all.hash_join = true;
  all.forced_projection = all.dynamic_index = true;
  all.tid_sort = all.index_and = true;
  all.bloomjoin = true;

  Optimizer built(DefaultRuleSet(all));
  Optimizer loaded(LoadDefaultDsl());
  auto r1 = built.Optimize(query);
  auto r2 = loaded.Optimize(query);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();

  EXPECT_DOUBLE_EQ(r1.value().total_cost, r2.value().total_cost);
  EXPECT_EQ(r1.value().final_plans.size(), r2.value().final_plans.size());
  EXPECT_EQ(PlanSignature(*r1.value().best),
            PlanSignature(*r2.value().best));
  EXPECT_EQ(r1.value().engine_metrics.plans_built,
            r2.value().engine_metrics.plans_built);
}

}  // namespace
}  // namespace starburst
