// Unit tests for the common substrate: Status/Result, Datum, IdSet, strings.

#include <gtest/gtest.h>

#include "common/id_set.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/value.h"

namespace starburst {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  Status s = Status::NotFound("thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: thing");
}

TEST(ResultTest, ValueAndError) {
  Result<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> err(Status::InvalidArgument("bad"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
  EXPECT_THROW(err.ValueOrDie(), std::runtime_error);
}

TEST(DatumTest, CompareWithinTypes) {
  EXPECT_LT(Datum(int64_t{1}).Compare(Datum(int64_t{2})), 0);
  EXPECT_EQ(Datum(int64_t{5}).Compare(Datum(int64_t{5})), 0);
  EXPECT_GT(Datum(std::string("b")).Compare(Datum(std::string("a"))), 0);
  EXPECT_LT(Datum(1.5).Compare(Datum(2.5)), 0);
}

TEST(DatumTest, CrossNumericCompare) {
  EXPECT_EQ(Datum(int64_t{3}).Compare(Datum(3.0)), 0);
  EXPECT_LT(Datum(int64_t{3}).Compare(Datum(3.5)), 0);
  EXPECT_GT(Datum(4.5).Compare(Datum(int64_t{4})), 0);
}

TEST(DatumTest, NullSortsFirst) {
  EXPECT_LT(Datum::NullValue().Compare(Datum(int64_t{-100})), 0);
  EXPECT_LT(Datum::NullValue().Compare(Datum(std::string(""))), 0);
  EXPECT_EQ(Datum::NullValue().Compare(Datum::NullValue()), 0);
}

TEST(DatumTest, HashConsistentWithEquality) {
  // int and double with the same value must hash identically because they
  // compare equal (hash-join buckets depend on this).
  EXPECT_EQ(Datum(int64_t{7}).Hash(), Datum(7.0).Hash());
  EXPECT_EQ(Datum(std::string("x")).Hash(), Datum(std::string("x")).Hash());
}

TEST(DatumTest, ToString) {
  EXPECT_EQ(Datum(int64_t{3}).ToString(), "3");
  EXPECT_EQ(Datum(std::string("hi")).ToString(), "'hi'");
  EXPECT_EQ(Datum::NullValue().ToString(), "NULL");
}

TEST(IdSetTest, BasicOperations) {
  QuantifierSet s;
  EXPECT_TRUE(s.empty());
  s.Insert(3).Insert(5);
  EXPECT_EQ(s.size(), 2);
  EXPECT_TRUE(s.Contains(3));
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.First(), 3);
  s.Remove(3);
  EXPECT_EQ(s.First(), 5);
}

TEST(IdSetTest, Algebra) {
  PredSet a = PredSet::Single(1).Union(PredSet::Single(2));
  PredSet b = PredSet::Single(2).Union(PredSet::Single(3));
  EXPECT_EQ(a.Union(b).size(), 3);
  EXPECT_EQ(a.Intersect(b).size(), 1);
  EXPECT_TRUE(a.Intersect(b).Contains(2));
  EXPECT_EQ(a.Minus(b).size(), 1);
  EXPECT_TRUE(a.Minus(b).Contains(1));
  EXPECT_TRUE(a.Union(b).ContainsAll(a));
  EXPECT_FALSE(a.ContainsAll(b));
  EXPECT_TRUE(a.Intersects(b));
}

TEST(IdSetTest, FirstNAndVector) {
  QuantifierSet s = QuantifierSet::FirstN(4);
  EXPECT_EQ(s.size(), 4);
  EXPECT_EQ(s.ToVector(), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(QuantifierSet::FirstN(0).size(), 0);
  EXPECT_EQ(QuantifierSet::FirstN(64).size(), 64);
  EXPECT_EQ(s.ToString(), "{0,1,2,3}");
}

TEST(IdSetTest, TypeSafetyIsCompileTime) {
  // QuantifierSet and PredSet are distinct instantiations; this test simply
  // documents that mixing them does not compile:
  //   QuantifierSet{}.Union(PredSet{});  // error
  SUCCEED();
}

TEST(StringsTest, Join) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ", "), "");
  EXPECT_EQ(StrJoinMapped(std::vector<int>{1, 2}, "-",
                          [](int v) { return std::to_string(v * 2); }),
            "2-4");
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(0.5), "0.5");
  EXPECT_EQ(FormatDouble(-2.0), "-2");
}

TEST(StringsTest, UpperAndPrefix) {
  EXPECT_EQ(ToUpper("select"), "SELECT");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

}  // namespace
}  // namespace starburst
