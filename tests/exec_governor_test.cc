// Tests for execution-time resource governance: the ExecGovernor's deadline
// and cancellation trips (latched, thread-safe, descriptive), the memory
// budget acting as a spill threshold rather than a hard trip, the SpillFile
// round trip and its fault sites, spill-forced SORT / JOIN(HA) runs that
// match the in-memory engines exactly, and the cleanup discipline: every
// error, cancellation, or injected-fault path must leave zero live temp
// files and zero residual tracked bytes.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/synthetic.h"
#include "common/fault_injector.h"
#include "cost/cost_model.h"
#include "exec/evaluator.h"
#include "exec/governor.h"
#include "exec/spill_file.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "optimizer/optimizer.h"
#include "plan/explain.h"
#include "properties/property_functions.h"
#include "sql/parser.h"
#include "star/default_rules.h"
#include "storage/datagen.h"

namespace starburst {
namespace {

// ---------------------------------------------------------------------------
// ExecGovernor unit behavior.
// ---------------------------------------------------------------------------

TEST(ExecGovernorTest, DisabledWhenNoLimitsAndNoToken) {
  ExecGovernor governor(ExecLimits{}, nullptr);
  EXPECT_FALSE(governor.enabled());
  EXPECT_TRUE(governor.Check().ok());
  EXPECT_FALSE(governor.stopped());
  EXPECT_FALSE(governor.ShouldSpill());
}

TEST(ExecGovernorTest, DeadlineTripsAsResourceExhaustedAndLatches) {
  ExecLimits limits;
  limits.deadline_ms = 1;
  ExecGovernor governor(limits, nullptr);
  EXPECT_TRUE(governor.enabled());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Status st = governor.Check();
  ASSERT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(st.ToString().find("deadline"), std::string::npos)
      << st.ToString();
  EXPECT_TRUE(governor.stopped());
  // Latched: every later check returns the same trip.
  EXPECT_EQ(governor.Check().ToString(), st.ToString());
}

TEST(ExecGovernorTest, CancelTokenTripsAsCancelledAndWinsOverDeadline) {
  ExecLimits limits;
  limits.deadline_ms = 1;  // also expired by the time we check
  CancelToken token = std::make_shared<std::atomic<bool>>(false);
  ExecGovernor governor(limits, token);
  EXPECT_TRUE(governor.enabled());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  token->store(true);
  // Cancellation is checked before the deadline: an explicit client stop is
  // reported as kCancelled even when the deadline has also passed.
  Status st = governor.Check();
  ASSERT_EQ(st.code(), StatusCode::kCancelled);
  EXPECT_NE(st.ToString().find("cancelled"), std::string::npos)
      << st.ToString();
  EXPECT_TRUE(governor.stopped());
}

TEST(ExecGovernorTest, MemoryBudgetNeverHardTripsButSignalsSpill) {
  ExecLimits limits;
  limits.mem_limit = 100;
  ExecGovernor governor(limits, nullptr);
  EXPECT_TRUE(governor.enabled());
  MemoryTracker tracker;
  governor.set_tracker(&tracker);
  EXPECT_FALSE(governor.ShouldSpill());
  tracker.Charge(100);
  EXPECT_TRUE(governor.ShouldSpill());
  // Over budget is NOT an error: Check stays OK, the query spills instead.
  EXPECT_TRUE(governor.Check().ok());
  EXPECT_FALSE(governor.stopped());
  tracker.Release(100);
  EXPECT_FALSE(governor.ShouldSpill());
  // No tracker attached -> no spill signal even with a budget.
  governor.set_tracker(nullptr);
  EXPECT_FALSE(governor.ShouldSpill());
}

TEST(ExecGovernorTest, EnvDefaultsParse) {
  ASSERT_EQ(setenv("STARBURST_EXEC_DEADLINE_MS", "123", 1), 0);
  EXPECT_EQ(DefaultExecDeadlineMs(), 123);
  ASSERT_EQ(setenv("STARBURST_EXEC_DEADLINE_MS", "not-a-number", 1), 0);
  EXPECT_EQ(DefaultExecDeadlineMs(), 0);
  ASSERT_EQ(setenv("STARBURST_EXEC_DEADLINE_MS", "-5", 1), 0);
  EXPECT_EQ(DefaultExecDeadlineMs(), 0);
  ASSERT_EQ(unsetenv("STARBURST_EXEC_DEADLINE_MS"), 0);
  EXPECT_EQ(DefaultExecDeadlineMs(), 0);
  ASSERT_EQ(setenv("STARBURST_EXEC_MEM_LIMIT", "65536", 1), 0);
  EXPECT_EQ(DefaultExecMemLimit(), 65536);
  ASSERT_EQ(unsetenv("STARBURST_EXEC_MEM_LIMIT"), 0);
  EXPECT_EQ(DefaultExecMemLimit(), 0);
}

// ---------------------------------------------------------------------------
// SpillFile: round trip, fault sites, no leaked temp files.
// ---------------------------------------------------------------------------

TEST(SpillFileTest, RoundTripsEveryDatumKind) {
  int64_t live_before = SpillFile::LiveFiles();
  {
    SpillFile file;
    EXPECT_FALSE(file.created());
    ASSERT_TRUE(file.Create(nullptr).ok());
    EXPECT_TRUE(file.created());
    EXPECT_EQ(SpillFile::LiveFiles(), live_before + 1);
    std::vector<std::vector<Datum>> rows = {
        {Datum(int64_t{42}), Datum(std::string("Haas")), Datum(3.5)},
        {Datum::NullValue(), Datum(std::string("")), Datum(int64_t{-7})},
    };
    ASSERT_TRUE(file.WriteRows(rows).ok());
    ASSERT_TRUE(file.WriteRow({Datum(int64_t{99})}).ok());
    ASSERT_TRUE(file.FinishWrite().ok());
    EXPECT_EQ(file.rows_written(), 3);
    EXPECT_GT(file.bytes_written(), 0);
    ASSERT_TRUE(file.BeginRead().ok());
    std::vector<Datum> row;
    bool eof = false;
    ASSERT_TRUE(file.ReadRow(&row, &eof).ok());
    ASSERT_FALSE(eof);
    ASSERT_EQ(row.size(), 3u);
    EXPECT_EQ(row[0].Compare(Datum(int64_t{42})), 0);
    EXPECT_EQ(row[1].Compare(Datum(std::string("Haas"))), 0);
    EXPECT_EQ(row[2].Compare(Datum(3.5)), 0);
    ASSERT_TRUE(file.ReadRow(&row, &eof).ok());
    ASSERT_FALSE(eof);
    ASSERT_EQ(row.size(), 3u);
    EXPECT_TRUE(row[0].is_null());
    ASSERT_TRUE(file.ReadRow(&row, &eof).ok());
    ASSERT_FALSE(eof);
    ASSERT_EQ(row.size(), 1u);
    EXPECT_EQ(row[0].Compare(Datum(int64_t{99})), 0);
    ASSERT_TRUE(file.ReadRow(&row, &eof).ok());
    EXPECT_TRUE(eof);
  }
  // The destructor closed and unlinked.
  EXPECT_EQ(SpillFile::LiveFiles(), live_before);
}

TEST(SpillFileTest, FaultSitesFireAndLeakNothing) {
  int64_t live_before = SpillFile::LiveFiles();
  {
    FaultInjector faults;
    ASSERT_TRUE(faults.Configure("exec.spill.open=1").ok());
    SpillFile file;
    Status st = file.Create(&faults);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.ToString().find("injected fault at exec.spill.open"),
              std::string::npos)
        << st.ToString();
    EXPECT_FALSE(file.created());
  }
  {
    FaultInjector faults;
    ASSERT_TRUE(faults.Configure("exec.spill.write=1").ok());
    SpillFile file;
    ASSERT_TRUE(file.Create(&faults).ok());
    Status st = file.WriteRow({Datum(int64_t{1})});
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.ToString().find("injected fault at exec.spill.write"),
              std::string::npos)
        << st.ToString();
  }
  {
    FaultInjector faults;
    ASSERT_TRUE(faults.Configure("exec.spill.read=1").ok());
    SpillFile file;
    ASSERT_TRUE(file.Create(&faults).ok());
    ASSERT_TRUE(file.WriteRow({Datum(int64_t{1})}).ok());
    ASSERT_TRUE(file.FinishWrite().ok());
    Status st = file.BeginRead();
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.ToString().find("injected fault at exec.spill.read"),
              std::string::npos)
        << st.ToString();
  }
  EXPECT_EQ(SpillFile::LiveFiles(), live_before);
}

// ---------------------------------------------------------------------------
// End-to-end governance over real plans.
// ---------------------------------------------------------------------------

class ExecGovernanceTest : public ::testing::Test {
 protected:
  ExecGovernanceTest() : catalog_(MakePaperCatalog()), db_(catalog_) {
    // scale 0.5 -> EMP 10000 rows: enough for multi-run spills, morsel
    // pools, and a window for mid-flight cancellation.
    Status st = PopulatePaperDatabase(&db_, /*seed=*/7, /*scale=*/0.5);
    if (!st.ok()) ADD_FAILURE() << st.ToString();
  }

  Query Parse(const std::string& sql) {
    return ParseSql(catalog_, sql).ValueOrDie();
  }

  PlanPtr Best(const Query& query) {
    DefaultRuleOptions rule_opts;
    rule_opts.hash_join = true;
    optimizers_.push_back(
        std::make_unique<Optimizer>(DefaultRuleSet(rule_opts)));
    return optimizers_.back()->Optimize(query).ValueOrDie().best;
  }

  // Hand-built JOIN(HA) so the Grace spill path is covered regardless of
  // which flavor the cost model prefers. `emp_outer` flips which side is
  // the (streamed, spilled-to-partitions) probe.
  PlanPtr HashJoinPlan(const Query& query, bool emp_outer) {
    auto col = [&](const char* alias, const char* name) {
      return query.ResolveColumn(alias, name).ValueOrDie();
    };
    OpArgs dept_args;
    dept_args.Set(arg::kQuantifier, int64_t{0});
    dept_args.Set(arg::kCols, std::vector<ColumnRef>{col("DEPT", "DNO"),
                                                     col("DEPT", "MGR")});
    dept_args.Set(arg::kPreds, PredSet{});
    PlanPtr dept = factory(query)
                       .Make(op::kAccess, flavor::kHeap, {},
                             std::move(dept_args))
                       .ValueOrDie();
    OpArgs emp_args;
    emp_args.Set(arg::kQuantifier, int64_t{1});
    emp_args.Set(arg::kCols,
                 std::vector<ColumnRef>{col("EMP", "DNO"), col("EMP", "NAME"),
                                        col("EMP", "SALARY")});
    emp_args.Set(arg::kPreds, PredSet{});
    PlanPtr emp = factory(query)
                      .Make(op::kAccess, flavor::kHeap, {},
                            std::move(emp_args))
                      .ValueOrDie();
    OpArgs join;
    join.Set(arg::kJoinPreds, PredSet::Single(0));
    join.Set(arg::kResidualPreds, PredSet{});
    PlanPtr outer = emp_outer ? std::move(emp) : std::move(dept);
    PlanPtr inner = emp_outer ? std::move(dept) : std::move(emp);
    return factory(query)
        .Make(op::kJoin, flavor::kHA, {std::move(outer), std::move(inner)},
              std::move(join))
        .ValueOrDie();
  }

  PlanFactory& factory(const Query& query) {
    factories_.push_back(
        std::make_unique<PlanFactory>(query, cost_model_, registry_));
    return *factories_.back();
  }

  void SetUp() override {
    ASSERT_TRUE(RegisterBuiltinOperators(&registry_).ok());
  }

  Catalog catalog_;
  Database db_;
  CostModel cost_model_;
  OperatorRegistry registry_;
  std::vector<std::unique_ptr<Optimizer>> optimizers_;
  std::vector<std::unique_ptr<PlanFactory>> factories_;
};

TEST_F(ExecGovernanceTest, PreSetCancelTokenCancelsBothEngines) {
  Query query = Parse(
      "SELECT EMP.NAME, EMP.SALARY FROM EMP WHERE EMP.SALARY >= 100000 "
      "ORDER BY EMP.SALARY");
  PlanPtr plan = Best(query);
  for (int vectorized : {0, 1}) {
    ExecProfile profile;
    ExecOptions options;
    options.vectorized = vectorized;
    options.profile_sink = &profile;
    options.cancel = std::make_shared<std::atomic<bool>>(true);
    auto rs = ExecutePlan(db_, query, plan, options);
    ASSERT_FALSE(rs.ok()) << "vectorized=" << vectorized;
    EXPECT_EQ(rs.status().code(), StatusCode::kCancelled)
        << rs.status().ToString();
    EXPECT_NE(rs.status().ToString().find("cancelled"), std::string::npos)
        << rs.status().ToString();
    // A cancelled run must release every tracked byte on its way out.
    EXPECT_EQ(profile.memory().current_bytes(), 0)
        << "vectorized=" << vectorized;
    EXPECT_EQ(SpillFile::LiveFiles(), 0);
  }
}

TEST_F(ExecGovernanceTest, ExpiredDeadlineSurfacesAsResourceExhausted) {
  Query query = Parse("SELECT EMP.NAME FROM EMP ORDER BY EMP.NAME");
  PlanPtr plan = Best(query);
  ExecLimits limits;
  limits.deadline_ms = 1;
  ExecGovernor governor(limits, nullptr);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ExecProfile profile;
  Executor exec(db_, query);
  exec.set_vectorized(true);
  exec.set_profile(&profile);
  exec.set_governor(&governor);
  auto rs = exec.Run(plan);
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kResourceExhausted)
      << rs.status().ToString();
  EXPECT_NE(rs.status().ToString().find("deadline"), std::string::npos)
      << rs.status().ToString();
  EXPECT_EQ(profile.memory().current_bytes(), 0);
  EXPECT_EQ(exec.cached_materializations(), 0u);
}

TEST_F(ExecGovernanceTest, CrossThreadCancellationMidExchangeIsClean) {
  // A client thread trips the token while the exchange is mid-flight at 8
  // workers. Timing makes WHEN the trip lands nondeterministic, so every
  // attempt asserts the invariants (kCancelled or clean success, zero
  // residual bytes, zero temp files) and the test requires that at least one
  // attempt actually cancelled mid-run.
  Query query = Parse(
      "SELECT EMP.NAME, EMP.SALARY FROM DEPT, EMP "
      "WHERE DEPT.DNO = EMP.DNO");
  PlanPtr plan = HashJoinPlan(query, /*emp_outer=*/true);
  int cancelled = 0;
  for (int attempt = 0; attempt < 50 && cancelled == 0; ++attempt) {
    CancelToken token = std::make_shared<std::atomic<bool>>(false);
    std::thread client([token] {
      std::this_thread::sleep_for(std::chrono::microseconds(300));
      token->store(true);
    });
    ExecProfile profile;
    ExecOptions options;
    options.vectorized = 1;
    options.exec_threads = 8;
    options.profile_sink = &profile;
    options.cancel = token;
    auto rs = ExecutePlan(db_, query, plan, options);
    client.join();
    if (!rs.ok()) {
      EXPECT_EQ(rs.status().code(), StatusCode::kCancelled)
          << rs.status().ToString();
      ++cancelled;
    }
    EXPECT_EQ(profile.memory().current_bytes(), 0) << "attempt " << attempt;
    EXPECT_EQ(SpillFile::LiveFiles(), 0) << "attempt " << attempt;
  }
  EXPECT_GT(cancelled, 0) << "no attempt cancelled mid-run";
}

TEST_F(ExecGovernanceTest, SpilledSortMatchesInMemoryAndReports) {
  Query query = Parse(
      "SELECT EMP.NAME, EMP.SALARY FROM EMP ORDER BY EMP.NAME");
  PlanPtr plan = Best(query);
  ExecOptions plain;
  plain.vectorized = 1;
  plain.exec_mem_limit = -1;
  auto want = ExecutePlan(db_, query, plan, plain);
  ASSERT_TRUE(want.ok()) << want.status().ToString();

  ExecProfile profile;
  MetricsRegistry metrics;
  ExecOptions spilling;
  spilling.vectorized = 1;
  spilling.exec_mem_limit = 1;
  spilling.profile_sink = &profile;
  spilling.metrics = &metrics;
  auto got = ExecutePlan(db_, query, plan, spilling);
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  // Bit-identical rows, in order.
  ASSERT_EQ(got.value().rows.size(), want.value().rows.size());
  for (size_t i = 0; i < want.value().rows.size(); ++i) {
    ASSERT_EQ(got.value().rows[i].size(), want.value().rows[i].size());
    for (size_t j = 0; j < want.value().rows[i].size(); ++j) {
      ASSERT_EQ(got.value().rows[i][j].Compare(want.value().rows[i][j]), 0)
          << "row " << i << " col " << j;
    }
  }
  // The spill is visible everywhere it should be: operator profile,
  // profile JSON, EXPLAIN, the metrics gauge — and no files survive.
  int64_t spill_runs = 0, spill_bytes = 0;
  for (const auto& [node, p] : profile.ops()) {
    spill_runs += p.spill_runs;
    spill_bytes += p.spill_bytes;
  }
  EXPECT_GT(spill_runs, 1) << "a 1-byte budget must force multiple runs";
  EXPECT_GT(spill_bytes, 0);
  EXPECT_NE(profile.ToJson().find("\"spill\""), std::string::npos);
  ExplainOptions eopts;
  eopts.profile = &profile;
  std::string text = ExplainPlan(*plan, query, eopts);
  EXPECT_NE(text.find(" SPILL[runs="), std::string::npos) << text;
  EXPECT_NE(metrics.TakeSnapshot().ToText().find("exec.spill_bytes"),
            std::string::npos);
  EXPECT_EQ(profile.memory().current_bytes(), 0);
  EXPECT_EQ(SpillFile::LiveFiles(), 0);
}

TEST_F(ExecGovernanceTest, GraceHashJoinMatchesInMemory) {
  Query query = Parse(
      "SELECT EMP.NAME, EMP.SALARY FROM DEPT, EMP "
      "WHERE DEPT.DNO = EMP.DNO");
  for (bool emp_outer : {false, true}) {
    PlanPtr plan = HashJoinPlan(query, emp_outer);
    ExecOptions plain;
    plain.vectorized = 1;
    plain.exec_mem_limit = -1;
    auto want = ExecutePlan(db_, query, plan, plain);
    ASSERT_TRUE(want.ok()) << want.status().ToString();

    ExecProfile profile;
    ExecOptions spilling;
    spilling.vectorized = 1;
    spilling.exec_mem_limit = 1;
    spilling.profile_sink = &profile;
    auto got = ExecutePlan(db_, query, plan, spilling);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got.value().rows.size(), want.value().rows.size())
        << "emp_outer=" << emp_outer;
    for (size_t i = 0; i < want.value().rows.size(); ++i) {
      for (size_t j = 0; j < want.value().rows[i].size(); ++j) {
        ASSERT_EQ(got.value().rows[i][j].Compare(want.value().rows[i][j]), 0)
            << "row " << i << " col " << j << " emp_outer=" << emp_outer;
      }
    }
    int64_t spill_runs = 0;
    for (const auto& [node, p] : profile.ops()) spill_runs += p.spill_runs;
    EXPECT_GT(spill_runs, 0) << "emp_outer=" << emp_outer;
    EXPECT_EQ(profile.memory().current_bytes(), 0);
    EXPECT_EQ(SpillFile::LiveFiles(), 0);
  }
}

TEST_F(ExecGovernanceTest, SpillFaultsUnwindWithoutResidue) {
  // Every spill fault site, over both spilling operators: the injected
  // fault must surface descriptively, and the unwind must release every
  // charge and unlink every temp file.
  Query sort_query = Parse(
      "SELECT EMP.NAME, EMP.SALARY FROM EMP ORDER BY EMP.NAME");
  PlanPtr sort_plan = Best(sort_query);
  Query join_query = Parse(
      "SELECT EMP.NAME, EMP.SALARY FROM DEPT, EMP "
      "WHERE DEPT.DNO = EMP.DNO");
  PlanPtr join_plan = HashJoinPlan(join_query, /*emp_outer=*/false);
  struct Case {
    const Query* query;
    const PlanPtr* plan;
    const char* label;
  };
  Case cases[] = {{&sort_query, &sort_plan, "sort"},
                  {&join_query, &join_plan, "join"}};
  const char* sites[] = {"exec.spill.open", "exec.spill.write",
                         "exec.spill.read"};
  for (const Case& c : cases) {
    for (const char* site : sites) {
      for (int nth : {1, 2}) {
        FaultInjector faults;
        std::string spec = std::string(site) + "=" + std::to_string(nth);
        ASSERT_TRUE(faults.Configure(spec).ok());
        ExecProfile profile;
        ExecOptions options;
        options.vectorized = 1;
        options.exec_mem_limit = 1;
        options.profile_sink = &profile;
        options.faults = &faults;
        auto rs = ExecutePlan(db_, *c.query, *c.plan, options);
        ASSERT_FALSE(rs.ok()) << c.label << " " << spec << " did not trip";
        EXPECT_NE(rs.status().ToString().find("injected fault at " +
                                              std::string(site)),
                  std::string::npos)
            << c.label << " " << spec << ": " << rs.status().ToString();
        EXPECT_EQ(profile.memory().current_bytes(), 0)
            << c.label << " " << spec;
        EXPECT_EQ(SpillFile::LiveFiles(), 0) << c.label << " " << spec;
      }
    }
  }
}

TEST_F(ExecGovernanceTest, SpillSurvivesExchangeParallelism) {
  // Spill + morsel parallelism together: the spilled result must equal the
  // unspilled sequential result exactly, and the run must clean up.
  Query query = Parse(
      "SELECT EMP.NAME, EMP.SALARY FROM DEPT, EMP "
      "WHERE DEPT.DNO = EMP.DNO ORDER BY EMP.SALARY");
  PlanPtr plan = Best(query);
  ExecOptions plain;
  plain.vectorized = 1;
  plain.exec_mem_limit = -1;
  plain.exec_threads = 1;
  auto want = ExecutePlan(db_, query, plan, plain);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  for (int threads : {2, 8}) {
    ExecProfile profile;
    ExecOptions spilling;
    spilling.vectorized = 1;
    spilling.exec_mem_limit = 1;
    spilling.exec_threads = threads;
    spilling.profile_sink = &profile;
    auto got = ExecutePlan(db_, query, plan, spilling);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got.value().rows.size(), want.value().rows.size())
        << "threads=" << threads;
    for (size_t i = 0; i < want.value().rows.size(); ++i) {
      for (size_t j = 0; j < want.value().rows[i].size(); ++j) {
        ASSERT_EQ(got.value().rows[i][j].Compare(want.value().rows[i][j]), 0)
            << "row " << i << " col " << j << " threads=" << threads;
      }
    }
    EXPECT_EQ(profile.memory().current_bytes(), 0) << "threads=" << threads;
    EXPECT_EQ(SpillFile::LiveFiles(), 0) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace starburst
