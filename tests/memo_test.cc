// Tests for the shared expansion memo (star/memo.h): canonical-key
// properties — insertion-order independence for set-valued arguments,
// order sensitivity for SAP-valued arguments, no collisions across distinct
// signatures — plus the memo container's first-writer-wins and accounting
// behavior. The keys are what make cross-worker caching sound, so the
// properties here are checked against actual engine expansions, not just
// string equality.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <unordered_set>
#include <vector>

#include "catalog/synthetic.h"
#include "plan/explain.h"
#include "sql/parser.h"
#include "star/memo.h"
#include "test_util.h"

namespace starburst {
namespace {

// All-heap so tests can hand-build ACCESS(heap) scans for any table.
Catalog TestCatalog(int n) {
  SyntheticCatalogOptions opts;
  opts.num_tables = n;
  opts.seed = 77;
  opts.btree_fraction = 0.0;
  return MakeSyntheticCatalog(opts);
}

std::string ChainSql(int n) {
  std::string sql = "SELECT T0.id FROM T0";
  for (int i = 1; i < n; ++i) sql += ", T" + std::to_string(i);
  sql += " WHERE T1.fk0 = T0.id";
  for (int i = 2; i < n; ++i) {
    sql += " AND T" + std::to_string(i) + ".fk0 = T" + std::to_string(i - 1) +
           ".id";
  }
  return sql;
}

/// Builds an IdSet by inserting `ids` in the given order — the insertion
/// order must not leak into the canonical key.
template <typename Set>
Set BuildSet(const std::vector<int>& ids) {
  Set s;
  for (int id : ids) s.Insert(id);
  return s;
}

/// The expansion a key stands for, as comparable canonical plan keys.
std::vector<std::string> ExpansionOf(const SAP& sap) {
  std::vector<std::string> out;
  out.reserve(sap.size());
  for (const PlanPtr& p : sap) out.push_back(CanonicalPlanKey(*p));
  return out;
}

TEST(MemoKeyTest, SetValuedArgsAreInsertionOrderIndependent) {
  std::mt19937 rng(7);
  std::vector<int> ids = {0, 1, 3, 5, 9, 12};
  const std::string base = CanonicalValueKey(
      RuleValue(BuildSet<QuantifierSet>(ids)));
  for (int trial = 0; trial < 20; ++trial) {
    std::shuffle(ids.begin(), ids.end(), rng);
    EXPECT_EQ(CanonicalValueKey(RuleValue(BuildSet<QuantifierSet>(ids))),
              base);
    EXPECT_EQ(CanonicalValueKey(RuleValue(BuildSet<PredSet>(ids))),
              CanonicalValueKey(RuleValue(
                  BuildSet<PredSet>({0, 1, 3, 5, 9, 12}))));
  }
  // Different membership is a different key.
  EXPECT_NE(CanonicalValueKey(RuleValue(BuildSet<QuantifierSet>({0, 1}))),
            CanonicalValueKey(RuleValue(BuildSet<QuantifierSet>({0, 2}))));
}

TEST(MemoKeyTest, RequirementAttachmentOrderDoesNotMatter) {
  ColumnRef col{0, 1};
  // The same requirements accumulated in different orders.
  Requirements a;
  a.order = SortOrder{col};
  a.site = 1;
  a.temp = true;
  Requirements b;
  b.temp = true;
  b.site = 1;
  b.order = SortOrder{col};

  StreamSpec sa{QuantifierSet::Single(0), PredSet::Single(0), a};
  StreamSpec sb{QuantifierSet::Single(0), PredSet::Single(0), b};
  EXPECT_EQ(CanonicalSpecKey(sa), CanonicalSpecKey(sb));

  // Any differing requirement is a differing key.
  StreamSpec sc = sa;
  sc.required.site = 2;
  EXPECT_NE(CanonicalSpecKey(sa), CanonicalSpecKey(sc));
  StreamSpec sd = sa;
  sd.required.temp = false;
  EXPECT_NE(CanonicalSpecKey(sa), CanonicalSpecKey(sd));
  StreamSpec se = sa;
  se.required.order = SortOrder{ColumnRef{1, 1}};
  EXPECT_NE(CanonicalSpecKey(sa), CanonicalSpecKey(se));
  // An order requirement is ordered: permuting its columns changes the key.
  StreamSpec sf = sa;
  sf.required.order = SortOrder{col, ColumnRef{1, 1}};
  StreamSpec sg = sa;
  sg.required.order = SortOrder{ColumnRef{1, 1}, col};
  EXPECT_NE(CanonicalSpecKey(sf), CanonicalSpecKey(sg));
}

TEST(MemoKeyTest, PlanKeysExcludeTempNamesLikeSignatures) {
  Catalog cat = TestCatalog(2);
  Query query = ParseSql(cat, ChainSql(2)).ValueOrDie();
  EngineHarness h(query, DefaultRuleSet());

  auto scan = [&](int q) {
    OpArgs args;
    args.Set(arg::kQuantifier, int64_t{q});
    args.Set(arg::kCols, std::vector<ColumnRef>{
                             query.ResolveColumn("T" + std::to_string(q), "id")
                                 .ValueOrDie()});
    return h.factory()
        .Make(op::kAccess, flavor::kHeap, {}, std::move(args))
        .ValueOrDie();
  };
  auto store = [&](PlanPtr in, const std::string& temp_name) {
    OpArgs args;
    args.Set(arg::kTempName, temp_name);
    return h.factory()
        .Make(op::kStore, "", {std::move(in)}, std::move(args))
        .ValueOrDie();
  };

  PlanPtr a = store(scan(0), "w0_tmp1");
  PlanPtr b = store(scan(0), "w3_tmp9");
  // Parallel workers generate distinct temp names for otherwise identical
  // plans; both the signature and the memo key treat them as the same plan.
  EXPECT_EQ(PlanSignature(*a), PlanSignature(*b));
  EXPECT_EQ(CanonicalPlanKey(*a), CanonicalPlanKey(*b));
  // But a differing structural argument is a differing key even where the
  // signature is too coarse to see it (residual predicates, §4.4).
  PlanPtr c = scan(0);
  PlanPtr d = scan(1);
  EXPECT_NE(CanonicalPlanKey(*c), CanonicalPlanKey(*d));
}

TEST(MemoKeyTest, SapArgPermutationChangesKeyAndExpansionTogether) {
  Catalog cat = TestCatalog(2);
  Query query = ParseSql(cat, ChainSql(2)).ValueOrDie();
  RuleSet rules = DefaultRuleSet();
  // Echo(P) = P: the simplest SAP-consuming STAR. Its expansion is exactly
  // its argument, so "equal keys iff equal expansions" is directly checkable
  // under permutations of the argument.
  Star echo;
  echo.name = "Echo";
  echo.params = {"P"};
  Alternative alt;
  alt.label = "echo";
  alt.body = RuleExpr::Param("P");
  echo.alternatives.push_back(std::move(alt));
  rules.AddOrReplace(std::move(echo));
  EngineHarness h(query, std::move(rules));

  auto scan = [&](int q) {
    OpArgs args;
    args.Set(arg::kQuantifier, int64_t{q});
    args.Set(arg::kCols, std::vector<ColumnRef>{
                             query.ResolveColumn("T" + std::to_string(q), "id")
                                 .ValueOrDie()});
    return h.factory()
        .Make(op::kAccess, flavor::kHeap, {}, std::move(args))
        .ValueOrDie();
  };
  SAP forward{scan(0), scan(1)};
  SAP backward{forward[1], forward[0]};

  const std::string key_fwd = CanonicalStarKey("Echo", {RuleValue(forward)});
  const std::string key_bwd = CanonicalStarKey("Echo", {RuleValue(backward)});
  auto expansion_fwd =
      ExpansionOf(h.engine().EvalStar("Echo", {RuleValue(forward)})
                      .ValueOrDie());
  auto expansion_bwd =
      ExpansionOf(h.engine().EvalStar("Echo", {RuleValue(backward)})
                      .ValueOrDie());

  // A SAP is an ordered collection (LOLEPOPs map over it in element order):
  // permuting it permutes the expansion, and the keys differ accordingly.
  EXPECT_NE(key_fwd, key_bwd);
  EXPECT_NE(expansion_fwd, expansion_bwd);

  // Re-building the same SAP from equal plans gives equal key and equal
  // expansion (the plans' node ids differ; keys are structural).
  SAP rebuilt{scan(0), scan(1)};
  EXPECT_EQ(CanonicalStarKey("Echo", {RuleValue(rebuilt)}), key_fwd);
  EXPECT_EQ(ExpansionOf(h.engine().EvalStar("Echo", {RuleValue(rebuilt)})
                            .ValueOrDie()),
            expansion_fwd);
}

TEST(MemoKeyTest, RandomizedQuantifierBindingsAgreeWithExpansions) {
  // The engine-level property behind the shared memo: for the real AccessRoot
  // STAR, randomized argument tuples built in randomized insertion orders
  // produce equal keys exactly when they denote the same arguments — and
  // equal keys always mean equal expansions.
  Catalog cat = TestCatalog(4);
  Query query = ParseSql(cat, ChainSql(4)).ValueOrDie();
  EngineHarness h(query, DefaultRuleSet());

  std::mt19937 rng(99);
  struct Case {
    std::string key;
    std::vector<std::string> expansion;
  };
  std::vector<Case> cases;
  for (int trial = 0; trial < 40; ++trial) {
    int q = static_cast<int>(rng() % 4);
    PredSet preds = query.EligiblePredicates(QuantifierSet::Single(q),
                                             query.AllPredicates());
    // Rebuild the predicate set in a shuffled insertion order.
    std::vector<int> ids = preds.ToVector();
    std::shuffle(ids.begin(), ids.end(), rng);
    PredSet shuffled;
    for (int id : ids) shuffled.Insert(id);

    StreamSpec spec;
    spec.tables = QuantifierSet::Single(q);
    spec.preds = shuffled;
    std::vector<RuleValue> args{RuleValue(spec), RuleValue(shuffled)};
    Case c;
    c.key = CanonicalStarKey("AccessRoot", args);
    c.expansion =
        ExpansionOf(h.engine().EvalStar("AccessRoot", args).ValueOrDie());
    cases.push_back(std::move(c));
  }
  for (size_t i = 0; i < cases.size(); ++i) {
    for (size_t j = i + 1; j < cases.size(); ++j) {
      if (cases[i].key == cases[j].key) {
        EXPECT_EQ(cases[i].expansion, cases[j].expansion)
            << "equal keys must mean equal expansions (i=" << i
            << " j=" << j << ")";
      } else {
        EXPECT_NE(cases[i].expansion, cases[j].expansion)
            << "these argument tuples differ, so must their expansions "
               "(i=" << i << " j=" << j << ")";
      }
    }
  }
}

TEST(MemoKeyTest, NoCollisionsAcrossTenThousandDistinctSignatures) {
  // 10k signatures, each distinct by construction (tables mask × requirement
  // variant × predicate mask), must produce 10k distinct keys.
  std::unordered_set<std::string> keys;
  constexpr int kVariants = 4;
  for (int i = 0; i < 10000; ++i) {
    StreamSpec spec;
    spec.tables = QuantifierSet::FromMask(static_cast<uint64_t>(i / kVariants) + 1);
    spec.preds = PredSet::FromMask(static_cast<uint64_t>(i % 7));
    switch (i % kVariants) {
      case 0:
        break;
      case 1:
        spec.required.order = SortOrder{ColumnRef{i % 5, i % 3}};
        break;
      case 2:
        spec.required.site = static_cast<SiteId>(i % 3);
        break;
      case 3:
        spec.required.temp = true;
        break;
    }
    // Every i maps to a unique (tables mask, requirement variant) pair, so
    // all 10k signatures are distinct by construction.
    keys.insert(CanonicalStarKey("JMeth", {RuleValue(spec),
                                           RuleValue(spec.preds)}));
  }
  EXPECT_EQ(keys.size(), 10000u);
}

TEST(ExpansionMemoTest, FirstWriterWinsAndStatsAccount) {
  Catalog cat = TestCatalog(2);
  Query query = ParseSql(cat, ChainSql(2)).ValueOrDie();
  EngineHarness h(query, DefaultRuleSet());
  auto scan = [&](int q) {
    OpArgs args;
    args.Set(arg::kQuantifier, int64_t{q});
    args.Set(arg::kCols, std::vector<ColumnRef>{
                             query.ResolveColumn("T" + std::to_string(q), "id")
                                 .ValueOrDie()});
    return h.factory()
        .Make(op::kAccess, flavor::kHeap, {}, std::move(args))
        .ValueOrDie();
  };

  ExpansionMemo memo;
  EXPECT_FALSE(memo.Lookup("k1").has_value());
  SAP value{scan(0)};
  int64_t bytes = memo.Insert("k1", value);
  EXPECT_GT(bytes, 0);
  EXPECT_EQ(memo.entries(), 1);
  EXPECT_EQ(memo.approx_bytes(), bytes);

  // Second writer with the canonically identical value loses the race and
  // accounts nothing.
  SAP twin{scan(0)};
  EXPECT_EQ(memo.Insert("k1", twin), 0);
  EXPECT_EQ(memo.entries(), 1);

  auto hit = memo.Lookup("k1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->size(), 1u);
  EXPECT_EQ(CanonicalPlanKey(*hit->front()), CanonicalPlanKey(*value[0]));

  ExpansionMemo::Stats stats = memo.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.inserts, 1);
  EXPECT_EQ(stats.insert_races, 1);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);

  memo.Clear();
  EXPECT_EQ(memo.entries(), 0);
  EXPECT_EQ(memo.approx_bytes(), 0);
  EXPECT_FALSE(memo.Lookup("k1").has_value());
  // Cumulative counters survive a Clear.
  EXPECT_EQ(memo.stats().inserts, 1);
}

}  // namespace
}  // namespace starburst
