// Unit tests for the property system (paper §3, Figure 2): the
// self-defining property vector, the registry, and — via PlanFactory — the
// property function of every built-in LOLEPOP.

#include <gtest/gtest.h>

#include "catalog/synthetic.h"
#include "cost/cost_model.h"
#include "plan/plan.h"
#include "properties/property_functions.h"
#include "sql/parser.h"

namespace starburst {
namespace {

TEST(PropertyVectorTest, DefaultsWhenAbsent) {
  PropertyVector pv;
  EXPECT_TRUE(pv.tables().empty());
  EXPECT_TRUE(pv.cols().empty());
  EXPECT_TRUE(pv.order().empty());
  EXPECT_EQ(pv.site(), 0);
  EXPECT_FALSE(pv.temp());
  EXPECT_EQ(pv.card(), 0.0);
  EXPECT_EQ(pv.cost(), Cost{});
}

TEST(PropertyVectorTest, SetGetOverwrite) {
  PropertyVector pv;
  pv.set_card(10.0);
  pv.set_site(2);
  pv.set_card(20.0);
  EXPECT_EQ(pv.card(), 20.0);
  EXPECT_EQ(pv.site(), 2);
  EXPECT_EQ(pv.entries().size(), 2u);
  // Entries stay sorted by id regardless of insertion order.
  EXPECT_EQ(pv.entries()[0].first, prop::kSite);
  EXPECT_EQ(pv.entries()[1].first, prop::kCard);
}

TEST(PropertyVectorTest, SelfDefiningRecordIgnoresUnknownFields) {
  // A property function that never heard of property 42 still works: the
  // field just rides along (paper §5's insulation argument).
  PropertyVector pv;
  pv.Set(42, PropertyValue(std::string("custom")));
  pv.set_card(5.0);
  EXPECT_TRUE(pv.Has(42));
  EXPECT_EQ(pv.card(), 5.0);
}

TEST(PropertyRegistryTest, BuiltinsAndExtension) {
  PropertyRegistry reg;
  EXPECT_EQ(reg.size(), prop::kNumBuiltin);
  EXPECT_EQ(reg.Find("ORDER").ValueOrDie(), prop::kOrder);
  EXPECT_EQ(reg.Find("COST").ValueOrDie(), prop::kCost);
  EXPECT_FALSE(reg.Find("BUCKETIZED").ok());

  auto id = reg.Register("BUCKETIZED", PropertyValue(false));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(reg.Find("BUCKETIZED").ValueOrDie(), id.value());
  EXPECT_EQ(reg.name(id.value()), "BUCKETIZED");
  EXPECT_FALSE(reg.Register("BUCKETIZED", PropertyValue(false)).ok());
}

TEST(OrderSatisfiesTest, PrefixSemantics) {
  ColumnRef a{0, 0}, b{0, 1}, c{1, 0};
  EXPECT_TRUE(OrderSatisfies({a, b, c}, {a, b}));
  EXPECT_TRUE(OrderSatisfies({a}, {}));       // empty requirement
  EXPECT_TRUE(OrderSatisfies({}, {}));
  EXPECT_FALSE(OrderSatisfies({a}, {a, b}));  // too short
  EXPECT_FALSE(OrderSatisfies({b, a}, {a}));  // wrong leading column
}

// ---------------------------------------------------------------------------
// Property functions, exercised through PlanFactory on the paper's schema.
// ---------------------------------------------------------------------------

class PropertyFnTest : public ::testing::Test {
 protected:
  PropertyFnTest()
      : catalog_(MakePaperCatalog()),
        query_(ParseSql(catalog_,
                        "SELECT EMP.NAME, EMP.ADDRESS FROM DEPT, EMP WHERE "
                        "DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO")
                   .ValueOrDie()),
        factory_(query_, cost_model_, registry_) {
    EXPECT_TRUE(RegisterBuiltinOperators(&registry_).ok());
  }

  ColumnRef Col(const char* alias, const char* name) {
    return query_.ResolveColumn(alias, name).ValueOrDie();
  }

  PlanPtr DeptScan() {
    OpArgs args;
    args.Set(arg::kQuantifier, int64_t{0});
    args.Set(arg::kCols, std::vector<ColumnRef>{Col("DEPT", "DNO"),
                                                Col("DEPT", "MGR")});
    args.Set(arg::kPreds, PredSet::Single(0));  // MGR = 'Haas'
    return factory_.Make(op::kAccess, flavor::kHeap, {}, std::move(args))
        .ValueOrDie();
  }

  PlanPtr EmpIndexAccess(PredSet preds) {
    OpArgs args;
    args.Set(arg::kQuantifier, int64_t{1});
    args.Set(arg::kIndex, std::string("EMP_DNO_IX"));
    args.Set(arg::kCols,
             std::vector<ColumnRef>{Col("EMP", "DNO"),
                                    ColumnRef{1, ColumnRef::kTidColumn}});
    args.Set(arg::kPreds, preds);
    return factory_.Make(op::kAccess, flavor::kIndex, {}, std::move(args))
        .ValueOrDie();
  }

  Catalog catalog_;
  Query query_;
  CostModel cost_model_;
  OperatorRegistry registry_;
  PlanFactory factory_;
};

TEST_F(PropertyFnTest, HeapAccessSetsRelationalAndEstimatedProps) {
  PlanPtr scan = DeptScan();
  const PropertyVector& p = scan->props;
  EXPECT_EQ(p.tables(), QuantifierSet::Single(0));
  EXPECT_EQ(p.cols().size(), 2u);
  EXPECT_EQ(p.preds(), PredSet::Single(0));
  EXPECT_TRUE(p.order().empty());  // heap order unknown
  EXPECT_FALSE(p.temp());
  // MGR = 'Haas' with 250 distinct managers over 500 rows -> card = 2.
  EXPECT_NEAR(p.card(), 2.0, 0.01);
  EXPECT_GT(p.cost().io, 0.0);
  EXPECT_GT(p.cost().cpu, 0.0);
  EXPECT_EQ(p.cost().comm, 0.0);
  // PATHS comes from the catalog (DEPT has none).
  EXPECT_TRUE(p.paths().empty());
}

TEST_F(PropertyFnTest, IndexAccessYieldsKeyOrderAndPaths) {
  PlanPtr ix = EmpIndexAccess(PredSet{});
  EXPECT_EQ(ix->props.order(), SortOrder{Col("EMP", "DNO")});
  ASSERT_EQ(ix->props.paths().size(), 1u);
  EXPECT_EQ(ix->props.paths()[0].name, "EMP_DNO_IX");
  EXPECT_NEAR(ix->props.card(), 20000.0, 1.0);
}

TEST_F(PropertyFnTest, IndexAccessRejectsNonKeyPredicates) {
  OpArgs args;
  args.Set(arg::kQuantifier, int64_t{1});
  args.Set(arg::kIndex, std::string("EMP_DNO_IX"));
  args.Set(arg::kCols,
           std::vector<ColumnRef>{Col("EMP", "DNO"),
                                  ColumnRef{1, ColumnRef::kTidColumn}});
  // Predicate 0 is DEPT.MGR = 'Haas': not applicable by an EMP index.
  args.Set(arg::kPreds, PredSet::Single(0));
  auto plan = factory_.Make(op::kAccess, flavor::kIndex, {}, std::move(args));
  EXPECT_FALSE(plan.ok());
}

TEST_F(PropertyFnTest, GetRequiresTidAndAddsColumns) {
  PlanPtr ix = EmpIndexAccess(PredSet{});
  OpArgs args;
  args.Set(arg::kQuantifier, int64_t{1});
  args.Set(arg::kCols, std::vector<ColumnRef>{Col("EMP", "NAME"),
                                              Col("EMP", "ADDRESS")});
  args.Set(arg::kPreds, PredSet{});
  PlanPtr get =
      factory_.Make(op::kGet, "", {ix}, std::move(args)).ValueOrDie();
  EXPECT_TRUE(get->props.cols().count(Col("EMP", "NAME")));
  EXPECT_EQ(get->props.order(), ix->props.order());  // fetch keeps order
  EXPECT_GT(get->props.cost().io, ix->props.cost().io);

  // Without a TID in the input, GET is rejected.
  OpArgs args2;
  args2.Set(arg::kQuantifier, int64_t{0});
  args2.Set(arg::kCols, std::vector<ColumnRef>{Col("DEPT", "DNAME")});
  EXPECT_FALSE(factory_.Make(op::kGet, "", {DeptScan()}, args2).ok());
}

TEST_F(PropertyFnTest, SortSetsOrderAndKeepsEverythingElse) {
  PlanPtr scan = DeptScan();
  OpArgs args;
  args.Set(arg::kOrder, std::vector<ColumnRef>{Col("DEPT", "DNO")});
  PlanPtr sorted =
      factory_.Make(op::kSort, "", {scan}, std::move(args)).ValueOrDie();
  EXPECT_EQ(sorted->props.order(), SortOrder{Col("DEPT", "DNO")});
  EXPECT_EQ(sorted->props.card(), scan->props.card());
  EXPECT_EQ(sorted->props.preds(), scan->props.preds());
  EXPECT_GE(cost_model_.Total(sorted->props.cost()),
            cost_model_.Total(scan->props.cost()));
  // Sorting on a column not in the stream is rejected.
  OpArgs bad;
  bad.Set(arg::kOrder, std::vector<ColumnRef>{Col("DEPT", "BUDGET")});
  EXPECT_FALSE(factory_.Make(op::kSort, "", {scan}, std::move(bad)).ok());
}

TEST_F(PropertyFnTest, SortOfSortedInputStillConstructs) {
  // Glue avoids redundant SORTs, but the operator itself is total.
  PlanPtr scan = DeptScan();
  OpArgs args;
  args.Set(arg::kOrder, std::vector<ColumnRef>{Col("DEPT", "DNO")});
  PlanPtr sorted1 = factory_.Make(op::kSort, "", {scan}, args).ValueOrDie();
  PlanPtr sorted2 =
      factory_.Make(op::kSort, "", {sorted1}, args).ValueOrDie();
  EXPECT_EQ(sorted2->props.order(), sorted1->props.order());
}

TEST(PropertyFnDistributedTest, ShipChangesSiteAndChargesComm) {
  PaperCatalogOptions copts;
  copts.distributed = true;
  Catalog catalog = MakePaperCatalog(copts);
  Query query =
      ParseSql(catalog, "SELECT DEPT.DNAME FROM DEPT").ValueOrDie();
  CostModel cm;
  OperatorRegistry reg;
  ASSERT_TRUE(RegisterBuiltinOperators(&reg).ok());
  PlanFactory factory(query, cm, reg);

  OpArgs access;
  access.Set(arg::kQuantifier, int64_t{0});
  access.Set(arg::kCols, std::vector<ColumnRef>{ColumnRef{0, 2}});
  PlanPtr scan =
      factory.Make(op::kAccess, flavor::kHeap, {}, std::move(access))
          .ValueOrDie();
  SiteId ny = catalog.FindSite("N.Y.").ValueOrDie();
  SiteId la = catalog.FindSite("L.A.").ValueOrDie();
  EXPECT_EQ(scan->props.site(), ny);

  OpArgs ship;
  ship.Set(arg::kSite, static_cast<int64_t>(la));
  PlanPtr shipped =
      factory.Make(op::kShip, "", {scan}, std::move(ship)).ValueOrDie();
  EXPECT_EQ(shipped->props.site(), la);
  EXPECT_GT(shipped->props.cost().comm, 0.0);

  // Shipping to the current site is free.
  OpArgs noop;
  noop.Set(arg::kSite, static_cast<int64_t>(ny));
  PlanPtr same =
      factory.Make(op::kShip, "", {scan}, std::move(noop)).ValueOrDie();
  EXPECT_EQ(same->props.cost(), scan->props.cost());
}

TEST_F(PropertyFnTest, StoreSetsTempAndDynamicPath) {
  PlanPtr scan = DeptScan();
  OpArgs args;
  args.Set(arg::kTempName, std::string("t1"));
  args.Set(arg::kIndexOn, std::vector<ColumnRef>{Col("DEPT", "DNO")});
  PlanPtr stored =
      factory_.Make(op::kStore, "", {scan}, std::move(args)).ValueOrDie();
  EXPECT_TRUE(stored->props.temp());
  ASSERT_EQ(stored->props.paths().size(), 1u);
  EXPECT_TRUE(stored->props.paths()[0].dynamic);
  EXPECT_EQ(stored->props.paths()[0].columns,
            (std::vector<ColumnRef>{Col("DEPT", "DNO")}));
  // Rescan (temp read) is much cheaper than the build.
  EXPECT_LT(cost_model_.Total(stored->props.rescan()),
            cost_model_.Total(stored->props.cost()));
  // Index key must be inside the stream.
  OpArgs bad;
  bad.Set(arg::kTempName, std::string("t2"));
  bad.Set(arg::kIndexOn, std::vector<ColumnRef>{Col("DEPT", "BUDGET")});
  EXPECT_FALSE(factory_.Make(op::kStore, "", {scan}, std::move(bad)).ok());
}

TEST_F(PropertyFnTest, JoinValidatesInputsAndCombinesProps) {
  PlanPtr dept = DeptScan();
  PlanPtr emp = EmpIndexAccess(PredSet::Single(1));  // DEPT.DNO = EMP.DNO

  OpArgs args;
  args.Set(arg::kJoinPreds, PredSet::Single(1));
  args.Set(arg::kResidualPreds, PredSet{});
  PlanPtr join =
      factory_.Make(op::kJoin, flavor::kNL, {dept, emp}, args).ValueOrDie();
  EXPECT_EQ(join->props.tables(), query_.AllQuantifiers());
  EXPECT_TRUE(join->props.preds().ContainsAll(query_.AllPredicates()));
  // Pushed join predicate not double counted: card = 2 * 40 = 80.
  EXPECT_NEAR(join->props.card(), 80.0, 1.0);
  EXPECT_EQ(join->props.order(), dept->props.order());

  // Joining overlapping table sets is rejected.
  EXPECT_FALSE(factory_.Make(op::kJoin, flavor::kNL, {dept, dept}, args).ok());
}

TEST_F(PropertyFnTest, MergeJoinRequiresOrderedInputs) {
  PlanPtr dept = DeptScan();  // unordered
  PlanPtr emp = EmpIndexAccess(PredSet{});
  OpArgs args;
  args.Set(arg::kJoinPreds, PredSet::Single(1));
  args.Set(arg::kResidualPreds, PredSet{});
  EXPECT_FALSE(factory_.Make(op::kJoin, flavor::kMG, {dept, emp}, args).ok());

  OpArgs sort_args;
  sort_args.Set(arg::kOrder, std::vector<ColumnRef>{Col("DEPT", "DNO")});
  PlanPtr sorted_dept =
      factory_.Make(op::kSort, "", {dept}, std::move(sort_args)).ValueOrDie();
  EXPECT_TRUE(
      factory_.Make(op::kJoin, flavor::kMG, {sorted_dept, emp}, args).ok());
}

TEST_F(PropertyFnTest, HashJoinDestroysOrder) {
  OpArgs sort_args;
  sort_args.Set(arg::kOrder, std::vector<ColumnRef>{Col("DEPT", "DNO")});
  PlanPtr dept =
      factory_.Make(op::kSort, "", {DeptScan()}, std::move(sort_args))
          .ValueOrDie();
  PlanPtr emp = EmpIndexAccess(PredSet{});
  OpArgs args;
  args.Set(arg::kJoinPreds, PredSet::Single(1));
  args.Set(arg::kResidualPreds, PredSet{});
  PlanPtr ha =
      factory_.Make(op::kJoin, flavor::kHA, {dept, emp}, args).ValueOrDie();
  EXPECT_TRUE(ha->props.order().empty());
}

TEST_F(PropertyFnTest, FilterReducesCardinalityMonotonically) {
  PlanPtr emp = EmpIndexAccess(PredSet{});
  OpArgs args;
  args.Set(arg::kPreds, PredSet::Single(1));
  PlanPtr filtered =
      factory_.Make(op::kFilter, "", {emp}, std::move(args)).ValueOrDie();
  EXPECT_LT(filtered->props.card(), emp->props.card());
  EXPECT_GE(cost_model_.Total(filtered->props.cost()),
            cost_model_.Total(emp->props.cost()));
  // Re-filtering with an already-applied predicate changes nothing.
  OpArgs again;
  again.Set(arg::kPreds, PredSet::Single(1));
  PlanPtr twice =
      factory_.Make(op::kFilter, "", {filtered}, std::move(again))
          .ValueOrDie();
  EXPECT_EQ(twice->props.card(), filtered->props.card());
}

TEST_F(PropertyFnTest, FactoryValidatesArityAndFlavor) {
  OpArgs args;
  EXPECT_FALSE(factory_.Make("NOPE", "", {}, args).ok());
  EXPECT_FALSE(factory_.Make(op::kJoin, "weird", {DeptScan(), DeptScan()},
                             args).ok());
  EXPECT_FALSE(factory_.Make(op::kSort, "", {}, args).ok());  // arity
}

}  // namespace
}  // namespace starburst
