#ifndef STARBURST_TESTS_TEST_UTIL_H_
#define STARBURST_TESTS_TEST_UTIL_H_

// Shared per-query harness for tests that drive the STAR engine, Glue, and
// plan table directly (below the Optimizer facade).

#include <memory>

#include "cost/cost_model.h"
#include "glue/glue.h"
#include "optimizer/enumerator.h"
#include "optimizer/plan_table.h"
#include "properties/property_functions.h"
#include "star/builtins.h"
#include "star/default_rules.h"
#include "star/engine.h"

namespace starburst {

class EngineHarness {
 public:
  EngineHarness(const Query& query, RuleSet rules,
                EngineOptions engine_options = EngineOptions{},
                CostParams cost_params = CostParams{})
      : rules_(std::move(rules)), cost_model_(cost_params) {
    if (!RegisterBuiltinOperators(&operators_).ok()) std::abort();
    if (!RegisterBuiltinFunctions(&functions_).ok()) std::abort();
    factory_ = std::make_unique<PlanFactory>(query, cost_model_, operators_);
    engine_ = std::make_unique<StarEngine>(factory_.get(), &rules_,
                                           &functions_, engine_options);
    table_ = std::make_unique<PlanTable>(&cost_model_);
    glue_ = std::make_unique<Glue>(engine_.get(), table_.get());
    engine_->set_glue(glue_.get());
  }

  StarEngine& engine() { return *engine_; }
  Glue& glue() { return *glue_; }
  PlanTable& table() { return *table_; }
  PlanFactory& factory() { return *factory_; }
  const CostModel& cost_model() const { return cost_model_; }
  RuleSet& rules() { return rules_; }
  OperatorRegistry& operators() { return operators_; }
  FunctionRegistry& functions() { return functions_; }

  /// Runs the bottom-up enumeration (single-table plans + joins).
  Status Enumerate() {
    JoinEnumerator enumerator(engine_.get(), glue_.get(), table_.get());
    return enumerator.Run();
  }

 private:
  RuleSet rules_;
  CostModel cost_model_;
  OperatorRegistry operators_;
  FunctionRegistry functions_;
  std::unique_ptr<PlanFactory> factory_;
  std::unique_ptr<StarEngine> engine_;
  std::unique_ptr<PlanTable> table_;
  std::unique_ptr<Glue> glue_;
};

}  // namespace starburst

#endif  // STARBURST_TESTS_TEST_UTIL_H_
