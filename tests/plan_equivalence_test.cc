// Differential plan-equivalence harness for the optimizer's cache layers.
//
// The oracle is the uncached exhaustive run: shared_memo=false,
// cache_augmented=false, threads=1 — every STAR expansion recomputed from
// scratch, no cross-subset or cross-worker sharing. Every other configuration
// ({shared memo on/off} x {augmented cache on/off} x threads {1,4,8}) must
// reproduce the oracle bit for bit: same best-plan cost (compared on raw
// double bits, not within an epsilon), same plan shape signature, same final
// Pareto frontier, same plan-table content, same enumeration stats. Caching
// is allowed to save effort, never to change an answer.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "catalog/synthetic.h"
#include "optimizer/optimizer.h"
#include "plan/explain.h"
#include "sql/parser.h"

namespace starburst {
namespace {

struct CacheConfig {
  bool shared_memo;
  bool cache_augmented;
  int threads;

  std::string Label() const {
    return std::string("memo=") + (shared_memo ? "on" : "off") +
           " aug=" + (cache_augmented ? "on" : "off") +
           " threads=" + std::to_string(threads);
  }
};

/// The full matrix: every cache-layer combination at 1, 4, and 8 workers.
std::vector<CacheConfig> AllConfigs() {
  std::vector<CacheConfig> out;
  for (bool memo : {false, true}) {
    for (bool aug : {false, true}) {
      for (int threads : {1, 4, 8}) {
        out.push_back(CacheConfig{memo, aug, threads});
      }
    }
  }
  return out;
}

Catalog MakeCat(int num_tables, int num_sites = 1) {
  SyntheticCatalogOptions opts;
  opts.num_tables = num_tables;
  opts.seed = 33;
  opts.num_sites = num_sites;
  return MakeSyntheticCatalog(opts);
}

std::string ChainSql(int n, const std::string& suffix = "") {
  std::string sql = "SELECT T0.id FROM T0";
  for (int i = 1; i < n; ++i) sql += ", T" + std::to_string(i);
  sql += " WHERE T1.fk0 = T0.id";
  for (int i = 2; i < n; ++i) {
    sql += " AND T" + std::to_string(i) + ".fk0 = T" + std::to_string(i - 1) +
           ".id";
  }
  return sql + suffix;
}

std::string StarSql(int n, const std::string& suffix = "") {
  std::string sql = "SELECT T0.id FROM T0";
  for (int i = 1; i < n; ++i) sql += ", T" + std::to_string(i);
  sql += " WHERE T1.fk0 = T0.id";
  for (int i = 2; i < n; ++i) {
    sql += " AND T" + std::to_string(i) + ".fk0 = T0.id";
  }
  return sql + suffix;
}

/// The exact bits of a double, so "equal cost" means equal to the last ulp —
/// a cache replaying a stale or re-derived value with different rounding
/// would show up here.
uint64_t Bits(double d) {
  uint64_t u = 0;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

struct Outcome {
  double total_cost = 0.0;
  std::string best_signature;
  /// Sorted signature@costbits of every plan on the final Pareto frontier.
  std::vector<std::string> frontier;
  int64_t plans_in_table = 0;
  JoinEnumerator::Stats enumerator_stats;
  ExpansionMemo::Stats memo_stats;
};

Outcome RunConfig(const Catalog& cat, const std::string& sql,
                  const CacheConfig& config) {
  Query query = ParseSql(cat, sql).ValueOrDie();
  OptimizerOptions options;
  // Pin every environment-sensitive knob: budgets off (a budget trip is
  // timing-dependent), thread count and cache switches from the config under
  // test rather than STARBURST_* variables.
  options.deadline_ms = 0;
  options.max_plans = 0;
  options.max_plan_table_bytes = 0;
  options.num_threads = config.threads;
  options.shared_memo = config.shared_memo;
  options.cache_augmented = config.cache_augmented;
  Optimizer optimizer(DefaultRuleSet(), options);
  auto result = optimizer.Optimize(query);
  EXPECT_TRUE(result.ok()) << config.Label() << ": "
                           << result.status().ToString();
  Outcome out;
  if (!result.ok()) return out;
  const OptimizeResult& r = result.value();
  EXPECT_TRUE(r.degradation_reason.empty()) << config.Label();
  out.total_cost = r.total_cost;
  out.best_signature = PlanSignature(*r.best);
  for (const PlanPtr& p : r.final_plans) {
    out.frontier.push_back(PlanSignature(*p));
  }
  std::sort(out.frontier.begin(), out.frontier.end());
  out.plans_in_table = r.plans_in_table;
  out.enumerator_stats = r.enumerator_stats;
  out.memo_stats = r.memo_stats;
  return out;
}

void ExpectEquivalent(const Outcome& oracle, const Outcome& got,
                      const std::string& label) {
  EXPECT_EQ(Bits(oracle.total_cost), Bits(got.total_cost))
      << label << ": cost " << oracle.total_cost << " vs " << got.total_cost;
  EXPECT_EQ(oracle.best_signature, got.best_signature) << label;
  EXPECT_EQ(oracle.frontier, got.frontier) << label;
  EXPECT_EQ(oracle.plans_in_table, got.plans_in_table) << label;
  EXPECT_EQ(oracle.enumerator_stats.subsets, got.enumerator_stats.subsets)
      << label;
  EXPECT_EQ(oracle.enumerator_stats.splits_considered,
            got.enumerator_stats.splits_considered)
      << label;
  EXPECT_EQ(oracle.enumerator_stats.joinable_pairs,
            got.enumerator_stats.joinable_pairs)
      << label;
  EXPECT_EQ(oracle.enumerator_stats.join_root_refs,
            got.enumerator_stats.join_root_refs)
      << label;
}

/// Runs the full 12-config matrix for one workload against the uncached
/// sequential oracle. Returns the total memo hits seen across the memo-on
/// configurations so callers can assert the cache was actually exercised
/// (an equivalence proof over a cache nobody hits would be vacuous).
int64_t RunMatrix(const Catalog& cat, const std::string& sql,
                  const std::string& workload) {
  Outcome oracle = RunConfig(cat, sql, CacheConfig{false, false, 1});
  EXPECT_GT(oracle.total_cost, 0.0) << workload;
  int64_t memo_hits = 0;
  for (const CacheConfig& config : AllConfigs()) {
    Outcome got = RunConfig(cat, sql, config);
    ExpectEquivalent(oracle, got, workload + " [" + config.Label() + "]");
    if (config.shared_memo || config.cache_augmented) {
      memo_hits += got.memo_stats.hits;
    } else {
      // With both layers off the memo must stay untouched.
      EXPECT_EQ(got.memo_stats.hits + got.memo_stats.misses, 0)
          << workload << " [" << config.Label() << "]";
    }
  }
  return memo_hits;
}

TEST(PlanEquivalenceTest, ChainJoinsSmallAndMedium) {
  for (int n : {4, 6}) {
    Catalog cat = MakeCat(n);
    int64_t hits = RunMatrix(cat, ChainSql(n),
                             "chain-" + std::to_string(n));
    EXPECT_GT(hits, 0) << "chain-" << n
                       << ": cache configurations never hit the memo";
  }
}

TEST(PlanEquivalenceTest, StarJoins) {
  Catalog cat = MakeCat(6);
  int64_t hits = RunMatrix(cat, StarSql(6), "star-6");
  EXPECT_GT(hits, 0);
}

TEST(PlanEquivalenceTest, RequiredOrder) {
  // ORDER BY makes the final Glue reference carry an order requirement, so
  // phase 2 exercises the augmented-plan path (SORT veneers) under every
  // cache configuration.
  Catalog cat = MakeCat(5);
  RunMatrix(cat, ChainSql(5, " ORDER BY T0.id"), "chain-5-order");
  RunMatrix(cat, StarSql(5, " ORDER BY T1.id"), "star-5-order");
}

TEST(PlanEquivalenceTest, RequiredSite) {
  // A multi-site catalog with an AT SITE requirement: SHIP veneers and
  // site-dependent costs must also be cache-invariant.
  Catalog cat = MakeCat(5, /*num_sites=*/3);
  RunMatrix(cat, ChainSql(5, " AT SITE 'site-1'"), "chain-5-site");
  RunMatrix(cat, ChainSql(5, " ORDER BY T2.id AT SITE 'site-2'"),
            "chain-5-order-site");
}

TEST(PlanEquivalenceTest, RepeatedCachedParallelRunsAgree) {
  // Scheduling varies run to run; with both cache layers on at 8 threads the
  // outcome still must not.
  Catalog cat = MakeCat(6);
  std::string sql = StarSql(6);
  CacheConfig config{true, true, 8};
  Outcome first = RunConfig(cat, sql, config);
  for (int run = 0; run < 2; ++run) {
    Outcome again = RunConfig(cat, sql, config);
    ExpectEquivalent(first, again, "repeated cached run " +
                                       std::to_string(run));
  }
}

TEST(PlanEquivalenceTest, MemoIsSharedAcrossWorkers) {
  // The memo's value under parallelism: once any worker expands a signature,
  // every other worker reuses it. At 8 threads the glue-layer hits on a
  // 7-table chain must be substantial, and the hit rate must not degrade
  // relative to the sequential run (same key space, same reuse).
  Catalog cat = MakeCat(7);
  std::string sql = ChainSql(7);
  Outcome seq = RunConfig(cat, sql, CacheConfig{true, true, 1});
  Outcome par = RunConfig(cat, sql, CacheConfig{true, true, 8});
  EXPECT_GT(seq.memo_stats.hits, 0);
  EXPECT_GT(par.memo_stats.hits, 0);
  // The hit/miss split is scheduling-dependent in a parallel run — two
  // workers can race to first-compute the same entry — but the entry set is
  // canonical: both runs compute exactly the distinct signatures of the
  // workload, so the successful-insert count (first writers) is identical.
  // Duplicate concurrent computes land in insert_races, not inserts.
  EXPECT_EQ(par.memo_stats.inserts, seq.memo_stats.inserts);
  EXPECT_EQ(par.memo_stats.entries, seq.memo_stats.entries);
}

}  // namespace
}  // namespace starburst
