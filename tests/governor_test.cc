// Tests for the resource governor and graceful degradation: tripping each
// budget, the greedy left-deep fallback (completes, is tagged, and returns
// the same query answer as the unbudgeted plan), deadline interruption at
// several thread counts, and determinism of the degraded plan.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include "catalog/synthetic.h"
#include "exec/evaluator.h"
#include "obs/metrics.h"
#include "optimizer/governor.h"
#include "optimizer/optimizer.h"
#include "plan/explain.h"
#include "sql/parser.h"
#include "star/memo.h"
#include "storage/datagen.h"
#include "test_util.h"

namespace starburst {
namespace {

Catalog ChainCatalog(int n) {
  SyntheticCatalogOptions opts;
  opts.num_tables = n;
  opts.seed = 21;
  return MakeSyntheticCatalog(opts);
}

std::string ChainSql(int n) {
  std::string sql = "SELECT T0.id FROM T0";
  for (int i = 1; i < n; ++i) sql += ", T" + std::to_string(i);
  sql += " WHERE T1.fk0 = T0.id";
  for (int i = 2; i < n; ++i) {
    sql += " AND T" + std::to_string(i) + ".fk0 = T" + std::to_string(i - 1) +
           ".id";
  }
  return sql;
}

TEST(GovernorTest, DisabledWhenEveryLimitIsZero) {
  ResourceGovernor governor(GovernorLimits{});
  EXPECT_FALSE(governor.enabled());
  EXPECT_TRUE(governor.Check().ok());
  EXPECT_FALSE(governor.stopped());
}

TEST(GovernorTest, MaxPlansTrips) {
  GovernorLimits limits;
  limits.max_plans = 10;
  ResourceGovernor governor(limits);
  EXPECT_TRUE(governor.enabled());
  governor.NotePlansConsidered(9);
  EXPECT_TRUE(governor.Check().ok());
  governor.NotePlansConsidered(1);
  Status st = governor.Check();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(governor.stopped());
  EXPECT_NE(governor.reason().find("max_plans"), std::string::npos)
      << governor.reason();
  // Subsequent checks keep reporting the same exhaustion.
  EXPECT_EQ(governor.Check().code(), StatusCode::kResourceExhausted);
}

TEST(GovernorTest, PlanTableBytesTrip) {
  GovernorLimits limits;
  limits.max_plan_table_bytes = 1024;
  ResourceGovernor governor(limits);
  governor.NotePlanTableBytes(1000);
  EXPECT_TRUE(governor.Check().ok());
  governor.NotePlanTableBytes(100);
  EXPECT_EQ(governor.Check().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(governor.reason().find("memory budget"), std::string::npos)
      << governor.reason();
}

TEST(GovernorTest, DeadlineTrips) {
  GovernorLimits limits;
  limits.deadline_ms = 1;
  ResourceGovernor governor(limits);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Status st = governor.Check();
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(governor.reason().find("deadline"), std::string::npos)
      << governor.reason();
}

TEST(GovernorTest, DeadlineNeverFiresEarlyAndNeverDrifts) {
  // The Deadline helper's documented overshoot contract: enforcement is
  // cooperative, so the worst case past the deadline is one inter-check unit
  // of work plus scheduler latency. What IS exact: expired() never fires
  // before the full budget has elapsed, and the deadline instant is computed
  // once at construction, so repeated checks compare against the same time
  // point instead of drifting it later.
  Deadline d(50);
  EXPECT_TRUE(d.enabled());
  EXPECT_EQ(d.ms(), 50);
  auto start = std::chrono::steady_clock::now();
  // Polling stands in for the per-batch / per-subset Check cadence.
  int checks = 0;
  while (!d.expired()) {
    ++checks;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_GE(elapsed, 50) << "deadline fired early after " << checks
                         << " checks";
  // Checking thousands more times cannot un-expire or postpone it.
  for (int i = 0; i < 10000; ++i) ASSERT_TRUE(d.expired());
  // A zero/negative budget means "no deadline", never "already expired".
  EXPECT_FALSE(Deadline(0).enabled());
  EXPECT_FALSE(Deadline(0).expired());
  EXPECT_FALSE(Deadline(-3).enabled());
  EXPECT_FALSE(Deadline().enabled());
}

TEST(GovernorTest, FirstTripReasonWins) {
  GovernorLimits limits;
  limits.max_plans = 1;
  limits.max_plan_table_bytes = 1;
  ResourceGovernor governor(limits);
  governor.NotePlansConsidered(5);
  EXPECT_FALSE(governor.Check().ok());
  std::string first = governor.reason();
  governor.NotePlanTableBytes(100);
  EXPECT_FALSE(governor.Check().ok());
  EXPECT_EQ(governor.reason(), first);
}

TEST(GovernorTest, EnvDefaultsParse) {
  ASSERT_EQ(setenv("STARBURST_MAX_PLANS", "123", 1), 0);
  EXPECT_EQ(DefaultMaxPlans(), 123);
  ASSERT_EQ(setenv("STARBURST_MAX_PLANS", "not-a-number", 1), 0);
  EXPECT_EQ(DefaultMaxPlans(), 0);
  ASSERT_EQ(setenv("STARBURST_MAX_PLANS", "-5", 1), 0);
  EXPECT_EQ(DefaultMaxPlans(), 0);
  ASSERT_EQ(unsetenv("STARBURST_MAX_PLANS"), 0);
  EXPECT_EQ(DefaultMaxPlans(), 0);
  ASSERT_EQ(setenv("STARBURST_DEADLINE_MS", "250", 1), 0);
  EXPECT_EQ(DefaultDeadlineMs(), 250);
  ASSERT_EQ(unsetenv("STARBURST_DEADLINE_MS"), 0);
}

TEST(GovernorTest, UnbudgetedRunIsNotDegraded) {
  Catalog catalog = ChainCatalog(4);
  Query query = ParseSql(catalog, ChainSql(4)).ValueOrDie();
  // Pin the budgets off so an inherited STARBURST_MAX_PLANS (the CI
  // low-budget job) cannot degrade this run.
  OptimizerOptions opts;
  opts.deadline_ms = 0;
  opts.max_plans = 0;
  opts.max_plan_table_bytes = 0;
  Optimizer optimizer(DefaultRuleSet(), opts);
  auto result = optimizer.Optimize(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().degraded());
  EXPECT_TRUE(result.value().degradation_reason.empty());
}

TEST(GovernorTest, MaxPlansDegradesToGreedyWithSameAnswer) {
  constexpr int kTables = 10;
  Catalog catalog = ChainCatalog(kTables);
  Query query = ParseSql(catalog, ChainSql(kTables)).ValueOrDie();

  OptimizerOptions full_opts;
  full_opts.num_threads = 1;
  // The baseline must be the true exhaustive run even when the environment
  // sets a budget (the CI low-budget job).
  full_opts.deadline_ms = 0;
  full_opts.max_plans = 0;
  full_opts.max_plan_table_bytes = 0;
  Optimizer full(DefaultRuleSet(), full_opts);
  auto full_result = full.Optimize(query);
  ASSERT_TRUE(full_result.ok()) << full_result.status().ToString();
  ASSERT_FALSE(full_result.value().degraded());

  OptimizerOptions tight_opts;
  tight_opts.num_threads = 1;
  tight_opts.max_plans = 200;  // far below a 10-table chain's DP plan count
  MetricsRegistry metrics;
  tight_opts.metrics = &metrics;
  Optimizer tight(DefaultRuleSet(), tight_opts);
  auto tight_result = tight.Optimize(query);
  ASSERT_TRUE(tight_result.ok()) << tight_result.status().ToString();
  EXPECT_TRUE(tight_result.value().degraded());
  EXPECT_NE(tight_result.value().degradation_reason.find("max_plans"),
            std::string::npos)
      << tight_result.value().degradation_reason;
  ASSERT_NE(tight_result.value().best, nullptr);
  // The greedy plan may cost more, never less, than the DP optimum.
  EXPECT_GE(tight_result.value().total_cost,
            full_result.value().total_cost - 1e-6);
  EXPECT_NE(metrics.TakeSnapshot().ToText().find("optimizer.degraded"),
            std::string::npos);

  // Both plans are semantically the same query: identical result multisets.
  Database db(catalog);
  ASSERT_TRUE(PopulateDatabase(&db, /*seed=*/7, /*scale=*/0.01).ok());
  auto full_rows = ExecutePlan(db, query, full_result.value().best);
  ASSERT_TRUE(full_rows.ok()) << full_rows.status().ToString();
  auto tight_rows = ExecutePlan(db, query, tight_result.value().best);
  ASSERT_TRUE(tight_rows.ok()) << tight_rows.status().ToString();
  auto same = SameResult(full_rows.value(), tight_rows.value(),
                         query.select_list());
  ASSERT_TRUE(same.ok()) << same.status().ToString();
  EXPECT_TRUE(same.value());
}

TEST(GovernorTest, PlanTableBytesBudgetDegrades) {
  constexpr int kTables = 8;
  Catalog catalog = ChainCatalog(kTables);
  Query query = ParseSql(catalog, ChainSql(kTables)).ValueOrDie();
  OptimizerOptions opts;
  opts.num_threads = 1;
  opts.max_plan_table_bytes = 16 * 1024;
  // Only the byte budget may trip here (we assert on the reason).
  opts.deadline_ms = 0;
  opts.max_plans = 0;
  Optimizer optimizer(DefaultRuleSet(), opts);
  auto result = optimizer.Optimize(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().degraded());
  EXPECT_NE(result.value().degradation_reason.find("memory budget"),
            std::string::npos)
      << result.value().degradation_reason;
}

TEST(GovernorTest, DeadlineInterruptsAtAnyThreadCount) {
  // 12 tables make the DP pass long enough that a 1ms deadline reliably
  // trips whether the enumeration is sequential or rank-parallel.
  constexpr int kTables = 12;
  Catalog catalog = ChainCatalog(kTables);
  Query query = ParseSql(catalog, ChainSql(kTables)).ValueOrDie();
  for (int threads : {1, 4}) {
    OptimizerOptions opts;
    opts.num_threads = threads;
    opts.deadline_ms = 1;
    // Only the deadline may trip here, even if the environment sets a plan
    // budget (first trip wins and we assert on the reason).
    opts.max_plans = 0;
    opts.max_plan_table_bytes = 0;
    Optimizer optimizer(DefaultRuleSet(), opts);
    auto result = optimizer.Optimize(query);
    ASSERT_TRUE(result.ok())
        << "threads=" << threads << ": " << result.status().ToString();
    EXPECT_TRUE(result.value().degraded()) << "threads=" << threads;
    EXPECT_NE(result.value().degradation_reason.find("deadline"),
              std::string::npos)
        << result.value().degradation_reason;
    ASSERT_NE(result.value().best, nullptr);
    // The table was cleared and rebuilt by the greedy pass: it holds plans
    // for the base tables plus one bucket per greedy step, nothing from the
    // interrupted DP state (which would be far larger).
    EXPECT_GT(result.value().plans_in_table, 0);
    EXPECT_LT(result.value().plans_in_table, 500) << "threads=" << threads;
  }
}

TEST(GovernorTest, DegradedPlanIsDeterministicAcrossThreadCounts) {
  constexpr int kTables = 10;
  Catalog catalog = ChainCatalog(kTables);
  Query query = ParseSql(catalog, ChainSql(kTables)).ValueOrDie();
  std::string baseline_sig;
  double baseline_cost = 0.0;
  for (int threads : {1, 2, 4}) {
    OptimizerOptions opts;
    opts.num_threads = threads;
    opts.max_plans = 200;
    Optimizer optimizer(DefaultRuleSet(), opts);
    auto result = optimizer.Optimize(query);
    ASSERT_TRUE(result.ok())
        << "threads=" << threads << ": " << result.status().ToString();
    ASSERT_TRUE(result.value().degraded()) << "threads=" << threads;
    std::string sig = PlanSignature(*result.value().best);
    if (threads == 1) {
      baseline_sig = sig;
      baseline_cost = result.value().total_cost;
    } else {
      EXPECT_EQ(sig, baseline_sig) << "threads=" << threads;
      EXPECT_DOUBLE_EQ(result.value().total_cost, baseline_cost)
          << "threads=" << threads;
    }
  }
}

TEST(GovernorTest, MemoBytesCountAgainstPlanTableBudget) {
  // The shared expansion memo draws from the same byte budget as the plan
  // table: memoized SAPs alone must be able to trip
  // STARBURST_MAX_PLAN_TABLE_BYTES.
  SyntheticCatalogOptions heap_opts;
  heap_opts.num_tables = 2;
  heap_opts.seed = 21;
  heap_opts.btree_fraction = 0.0;  // hand-built heap scans below
  Catalog catalog = MakeSyntheticCatalog(heap_opts);
  Query query = ParseSql(catalog, ChainSql(2)).ValueOrDie();
  EngineHarness h(query, DefaultRuleSet());
  OpArgs args;
  args.Set(arg::kQuantifier, int64_t{0});
  args.Set(arg::kCols, std::vector<ColumnRef>{
                           query.ResolveColumn("T0", "id").ValueOrDie()});
  PlanPtr plan = h.factory()
                     .Make(op::kAccess, flavor::kHeap, {}, std::move(args))
                     .ValueOrDie();

  GovernorLimits limits;
  limits.max_plan_table_bytes = 2048;
  ResourceGovernor governor(limits);
  ExpansionMemo memo;
  memo.set_governor(&governor);

  int inserted = 0;
  while (governor.Check().ok() && inserted < 1000) {
    memo.Insert("key-" + std::to_string(inserted), SAP{plan});
    ++inserted;
  }
  EXPECT_EQ(governor.Check().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(governor.reason().find("memory budget"), std::string::npos)
      << governor.reason();
  EXPECT_LT(inserted, 1000) << "memo bytes never reached the governor";
  EXPECT_EQ(governor.plan_table_bytes(), memo.approx_bytes());
  // Clearing the memo hands its bytes back to the shared gauge (the degrade
  // path relies on this so the greedy fallback starts from a clean budget).
  memo.Clear();
  EXPECT_EQ(governor.plan_table_bytes(), 0);
}

TEST(GovernorTest, ByteBudgetTripDegradesWithMemoEnabled) {
  // A mid-fill byte-budget trip with both cache layers on must degrade
  // gracefully: the run completes, and the memo is left empty — the greedy
  // fallback never reads memoized state, whose content would depend on
  // where the budget happened to trip.
  constexpr int kTables = 8;
  Catalog catalog = ChainCatalog(kTables);
  Query query = ParseSql(catalog, ChainSql(kTables)).ValueOrDie();
  for (int threads : {1, 4}) {
    OptimizerOptions opts;
    opts.num_threads = threads;
    opts.max_plan_table_bytes = 16 * 1024;
    opts.deadline_ms = 0;
    opts.max_plans = 0;
    opts.shared_memo = true;
    opts.cache_augmented = true;
    Optimizer optimizer(DefaultRuleSet(), opts);
    auto result = optimizer.Optimize(query);
    ASSERT_TRUE(result.ok())
        << "threads=" << threads << ": " << result.status().ToString();
    EXPECT_TRUE(result.value().degraded()) << "threads=" << threads;
    EXPECT_NE(result.value().degradation_reason.find("memory budget"),
              std::string::npos)
        << result.value().degradation_reason;
    ASSERT_NE(result.value().best, nullptr);
    EXPECT_EQ(result.value().memo_stats.entries, 0) << "threads=" << threads;
    EXPECT_EQ(result.value().memo_stats.approx_bytes, 0)
        << "threads=" << threads;
  }
}

TEST(GovernorTest, SingleTableQueryDegradesCleanly) {
  // The deadline can trip before even the single-table resolve; the greedy
  // fallback must still produce the (only possible) access plan.
  Catalog catalog = MakePaperCatalog();
  Query query = ParseSql(catalog, "SELECT EMP.NAME FROM EMP").ValueOrDie();
  OptimizerOptions opts;
  opts.max_plans = 1;
  Optimizer optimizer(DefaultRuleSet(), opts);
  auto result = optimizer.Optimize(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result.value().best, nullptr);
}

}  // namespace
}  // namespace starburst
