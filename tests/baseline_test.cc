// Tests for the EXODUS-style transformational baseline: it must explore a
// comparable plan space (so the E1 efficiency comparison is fair) and its
// chosen plans must execute to the same results as the STAR optimizer's.

#include <gtest/gtest.h>

#include "baseline/transform_optimizer.h"
#include "catalog/synthetic.h"
#include "exec/evaluator.h"
#include "optimizer/optimizer.h"
#include "plan/explain.h"
#include "sql/parser.h"
#include "star/default_rules.h"
#include "storage/datagen.h"

namespace starburst {
namespace {

Query PaperQuery(const Catalog& catalog) {
  return ParseSql(catalog,
                  "SELECT EMP.NAME, EMP.ADDRESS FROM DEPT, EMP WHERE "
                  "DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO")
      .ValueOrDie();
}

TEST(BaselineTest, FindsAPlanOnThePaperQuery) {
  Catalog catalog = MakePaperCatalog();
  Query query = PaperQuery(catalog);
  TransformOptimizer baseline;
  auto result = baseline.Optimize(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result.value().best, nullptr);
  EXPECT_GT(result.value().plans_total, 1);
  EXPECT_GT(result.value().metrics.rule_node_attempts, 0);
  EXPECT_GT(result.value().metrics.pattern_comparisons,
            result.value().metrics.rule_node_attempts);
}

TEST(BaselineTest, MatchesStarOptimizerPlanQualityOnTwoTables) {
  // With the same repertoire (NL + MG + index pushdown), both optimizers
  // should find the index nested-loop plan on the Figure-1 query.
  Catalog catalog = MakePaperCatalog();
  Query query = PaperQuery(catalog);

  Optimizer star_opt(DefaultRuleSet());
  auto star = star_opt.Optimize(query);
  ASSERT_TRUE(star.ok()) << star.status().ToString();

  TransformOptimizer baseline;
  auto base = baseline.Optimize(query);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  EXPECT_NEAR(star.value().total_cost, base.value().total_cost,
              star.value().total_cost * 0.05)
      << "STAR best:\n"
      << ExplainPlan(*star.value().best, query) << "baseline best:\n"
      << ExplainPlan(*base.value().best, query);
}

TEST(BaselineTest, BaselinePlansExecuteCorrectly) {
  Catalog catalog = MakePaperCatalog();
  Database db(catalog);
  ASSERT_TRUE(PopulatePaperDatabase(&db, 5, 0.02).ok());
  Query query = PaperQuery(catalog);

  Optimizer star_opt(DefaultRuleSet());
  auto star = star_opt.Optimize(query);
  ASSERT_TRUE(star.ok());
  TransformOptimizer baseline;
  auto base = baseline.Optimize(query);
  ASSERT_TRUE(base.ok());

  auto rs_star = ExecutePlan(db, query, star.value().best);
  ASSERT_TRUE(rs_star.ok()) << rs_star.status().ToString();
  auto rs_base = ExecutePlan(db, query, base.value().best);
  ASSERT_TRUE(rs_base.ok()) << rs_base.status().ToString()
                            << ExplainPlan(*base.value().best, query);
  auto same =
      SameResult(rs_star.value(), rs_base.value(), query.select_list());
  ASSERT_TRUE(same.ok()) << same.status().ToString();
  EXPECT_TRUE(same.value());
}

TEST(BaselineTest, EffortGrowsMuchFasterThanStarEngine) {
  // The paper's central efficiency claim (§1): transformational search
  // attempts every rule at every node of every plan, while STAR expansion
  // only references the STARs named in each definition.
  SyntheticCatalogOptions opts;
  opts.num_tables = 4;
  opts.seed = 2;
  Catalog catalog = MakeSyntheticCatalog(opts);
  auto query = ParseSql(catalog,
                        "SELECT T0.id FROM T0, T1, T2, T3 WHERE "
                        "T1.fk0 = T0.id AND T2.fk0 = T1.id AND "
                        "T3.fk0 = T2.id");
  ASSERT_TRUE(query.ok());

  Optimizer star_opt(DefaultRuleSet());
  auto star = star_opt.Optimize(query.value());
  ASSERT_TRUE(star.ok());

  TransformOptimizer baseline;
  auto base = baseline.Optimize(query.value());
  ASSERT_TRUE(base.ok());

  // Unification effort dwarfs the STAR engine's condition evaluations.
  EXPECT_GT(base.value().metrics.pattern_comparisons,
            10 * star.value().engine_metrics.conditions_evaluated);
}

TEST(BaselineTest, CapsStopRunawaySearch) {
  SyntheticCatalogOptions opts;
  opts.num_tables = 5;
  opts.seed = 4;
  Catalog catalog = MakeSyntheticCatalog(opts);
  auto query = ParseSql(catalog,
                        "SELECT T0.id FROM T0, T1, T2, T3, T4 WHERE "
                        "T1.fk0 = T0.id AND T2.fk0 = T1.id AND "
                        "T3.fk0 = T2.id AND T4.fk0 = T3.id");
  ASSERT_TRUE(query.ok());
  BaselineOptions options;
  options.max_plans = 300;
  TransformOptimizer baseline(options);
  auto result = baseline.Optimize(query.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LE(result.value().plans_total, 301);
  EXPECT_TRUE(result.value().metrics.hit_caps);
}

}  // namespace
}  // namespace starburst
