// Unit tests for the typed-kernel subsystem (exec/kernel.{h,cc}) and the
// selection-vector discipline it feeds: SelVector/RowBatch invariants,
// per-type kernel-vs-interpreter agreement on randomized batches (NULL-heavy
// ints, doubles, and strings, plus deliberately type-corrupt rows that must
// route to the mismatch list), adaptive-order stability, join-key hash
// compatibility, and the constant-fold divide-by-zero guard.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "exec/batch.h"
#include "exec/hash_table.h"
#include "exec/kernel.h"
#include "exec/pred_program.h"
#include "sql/parser.h"
#include "storage/table.h"

namespace starburst {
namespace {

ColumnDef MakeColumn(std::string name, ColumnType type, double distinct) {
  ColumnDef c;
  c.name = std::move(name);
  c.type = type;
  c.distinct_values = distinct;
  c.min_value = 0;
  c.max_value = distinct;
  c.avg_width = type == ColumnType::kString ? 8.0 : 8.0;
  return c;
}

/// One table covering every kernel leaf type: ID/NUM int64, VAL double,
/// TAG string.
Catalog MakeKernelCatalog(int64_t rows) {
  Catalog cat;
  TableDef t;
  t.name = "M";
  t.columns.push_back(MakeColumn("ID", ColumnType::kInt64, double(rows)));
  t.columns.push_back(MakeColumn("VAL", ColumnType::kDouble, double(rows)));
  t.columns.push_back(MakeColumn("TAG", ColumnType::kString, 26.0));
  t.columns.push_back(MakeColumn("NUM", ColumnType::kInt64, 200.0));
  t.row_count = static_cast<double>(rows);
  t.data_pages = std::max<double>(1.0, double(rows) / 40.0);
  auto added = cat.AddTable(std::move(t));
  EXPECT_TRUE(added.ok());
  return cat;
}

/// Randomized rows: ~1/6 NULLs per column, every 97th row type-corrupt (a
/// string stored in the int64 NUM column) so mismatch routing is exercised.
std::vector<Tuple> MakeRandomRows(int64_t n, uint32_t seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int64_t> ints(0, 199);
  std::uniform_real_distribution<double> dbls(0.0, 1.0);
  std::uniform_int_distribution<int> letters(0, 25);
  std::uniform_int_distribution<int> nulls(0, 5);
  std::vector<Tuple> rows;
  rows.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    Tuple t(4);
    t[0] = Datum(i);
    t[1] = nulls(rng) == 0 ? Datum::NullValue() : Datum(dbls(rng));
    t[2] = nulls(rng) == 0
               ? Datum::NullValue()
               : Datum(std::string(1, char('a' + letters(rng))) +
                       std::to_string(ints(rng)));
    t[3] = nulls(rng) == 0 ? Datum::NullValue() : Datum(ints(rng));
    if (i % 97 == 42) t[3] = Datum(std::string("corrupt"));
    rows.push_back(std::move(t));
  }
  return rows;
}

class KernelTest : public ::testing::Test {
 protected:
  static constexpr int64_t kRows = 500;

  KernelTest() : catalog_(MakeKernelCatalog(kRows)), db_(catalog_) {
    StoredTable* m = db_.FindTable("M").ValueOrDie();
    for (Tuple& t : MakeRandomRows(kRows, /*seed=*/31)) {
      EXPECT_TRUE(m->Insert(std::move(t)).ok());
    }
    EXPECT_TRUE(db_.Finalize().ok());
    // Slot layout: the scan's output tuple carries all four columns of q0.
    for (int c = 0; c < 4; ++c) schema_.push_back(ColumnRef{0, c});
  }

  Query Parse(const std::string& sql) {
    return ParseSql(catalog_, sql).ValueOrDie();
  }

  KernelEnv SlotEnv(const Query& query) {
    KernelEnv env;
    env.schema = &schema_;
    env.query = &query;
    env.db = &db_;
    return env;
  }

  KernelEnv ScanEnv(const Query& query) {
    KernelEnv env;
    env.schema = &schema_;
    env.query = &query;
    env.db = &db_;
    env.base_quantifier = 0;
    env.scan_mode = true;
    return env;
  }

  /// Interpreter oracle verdict for one row; fused predicates can never
  /// error, so Eval must be ok for rows the kernel decided.
  static bool OracleVerdict(const PredProgram& prog, const Tuple& row) {
    ProgramCtx ctx;
    ctx.row = &row;
    auto r = prog.Eval(ctx);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() && r.value();
  }

  /// Kernel-vs-interpreter agreement over the table rows in slot mode:
  /// every non-mismatch row's verdict must equal the interpreter's, and
  /// mismatch rows must be exactly the type-corrupt ones the kernel cannot
  /// decide. Returns the number of rows the kernel decided.
  int64_t ExpectSlotAgreement(const std::string& sql, KernelState* state) {
    Query query = Parse(sql);
    PredSet preds = query.AllPredicates();
    KernelProgram kp = KernelProgram::Compile(preds, query, SlotEnv(query));
    EXPECT_TRUE(kp.usable()) << sql;
    EXPECT_TRUE(kp.remainder().empty())
        << sql << ": expected a fully fused conjunction";
    CompileEnv cenv;
    cenv.schema = &schema_;
    PredProgram oracle = PredProgram::Compile(preds, query, cenv);

    const std::vector<Tuple>& rows = db_.FindTable("M").ValueOrDie()->rows();
    std::vector<int32_t> hits, mis;
    kp.EvalRows(rows, 0, rows.size(), &hits, &mis, state);
    // Sorted, unique, in range, and disjoint.
    EXPECT_TRUE(std::is_sorted(hits.begin(), hits.end()));
    EXPECT_TRUE(std::is_sorted(mis.begin(), mis.end()));
    std::set<int32_t> hit_set(hits.begin(), hits.end());
    std::set<int32_t> mis_set(mis.begin(), mis.end());
    EXPECT_EQ(hit_set.size(), hits.size());
    EXPECT_EQ(mis_set.size(), mis.size());
    for (int32_t i : hits) {
      EXPECT_GE(i, 0);
      EXPECT_LT(i, static_cast<int32_t>(rows.size()));
      EXPECT_EQ(mis_set.count(i), 0u);
    }
    for (size_t i = 0; i < rows.size(); ++i) {
      int32_t idx = static_cast<int32_t>(i);
      if (mis_set.count(idx)) continue;  // the caller re-runs these rows
      EXPECT_EQ(hit_set.count(idx) != 0, OracleVerdict(oracle, rows[i]))
          << sql << " row " << i;
    }
    return static_cast<int64_t>(rows.size() - mis.size());
  }

  Catalog catalog_;
  Database db_;
  Schema schema_;
};

// ---------------------------------------------------------------------------
// SelVector / RowBatch invariants.
// ---------------------------------------------------------------------------

TEST(SelVectorTest, CompactEqualsFilteredCopy) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<int> sizes(0, 64);
  std::uniform_int_distribution<int> coin(0, 2);
  for (int trial = 0; trial < 200; ++trial) {
    int n = sizes(rng);
    RowBatch b;
    for (int i = 0; i < n; ++i) {
      b.rows.push_back({Datum(int64_t{i}), Datum("s" + std::to_string(i))});
    }
    // Random subset as the selection (sorted ascending, unique).
    std::vector<int32_t> keep;
    for (int i = 0; i < n; ++i) {
      if (coin(rng) == 0) keep.push_back(i);
    }
    std::vector<Tuple> want;
    for (int32_t i : keep) want.push_back(b.rows[static_cast<size_t>(i)]);
    b.sel.active = true;
    b.sel.idx = keep;
    ASSERT_EQ(b.live(), keep.size());
    for (size_t k = 0; k < keep.size(); ++k) {
      ASSERT_EQ(b.live_row(k)[0].Compare(want[k][0]), 0);
    }
    b.Compact();
    EXPECT_FALSE(b.sel.active);
    ASSERT_EQ(b.rows.size(), want.size());
    for (size_t k = 0; k < want.size(); ++k) {
      for (size_t j = 0; j < want[k].size(); ++j) {
        EXPECT_EQ(b.rows[k][j].Compare(want[k][j]), 0)
            << "trial " << trial << " row " << k;
      }
    }
    // Compacting an inactive selection is a no-op.
    std::vector<Tuple> before = b.rows;
    b.Compact();
    EXPECT_EQ(b.rows.size(), before.size());
  }
}

// ---------------------------------------------------------------------------
// Per-type kernel-vs-interpreter agreement on randomized data.
// ---------------------------------------------------------------------------

TEST_F(KernelTest, Int64PredicatesAgreeWithInterpreter) {
  ExpectSlotAgreement("SELECT M.ID FROM M WHERE M.NUM >= 100", nullptr);
  ExpectSlotAgreement("SELECT M.ID FROM M WHERE M.NUM = 7", nullptr);
  ExpectSlotAgreement("SELECT M.ID FROM M WHERE M.NUM + 10 <= 60", nullptr);
}

TEST_F(KernelTest, DoublePredicatesAgreeWithInterpreter) {
  ExpectSlotAgreement("SELECT M.ID FROM M WHERE M.VAL >= 0.5", nullptr);
  ExpectSlotAgreement("SELECT M.ID FROM M WHERE M.VAL * 2.0 < 0.8", nullptr);
}

TEST_F(KernelTest, StringPredicatesAgreeWithInterpreter) {
  ExpectSlotAgreement("SELECT M.ID FROM M WHERE M.TAG >= 'm'", nullptr);
  ExpectSlotAgreement("SELECT M.ID FROM M WHERE M.TAG <> 'a3'", nullptr);
}

TEST_F(KernelTest, ConjunctionsAgreeWithInterpreter) {
  ExpectSlotAgreement(
      "SELECT M.ID FROM M WHERE M.NUM >= 20 AND M.VAL >= 0.25 "
      "AND M.TAG >= 'c'",
      nullptr);
}

TEST_F(KernelTest, AdaptiveOrderNeverChangesTheSelection) {
  // The adaptive state reorders fused conjuncts every 64 kernel calls; over
  // 500 single-row calls the order must tick several times without changing
  // a single verdict vs the fixed-order (nullptr state) evaluation.
  Query query = Parse(
      "SELECT M.ID FROM M WHERE M.NUM >= 20 AND M.VAL >= 0.25 "
      "AND M.TAG >= 'c'");
  PredSet preds = query.AllPredicates();
  KernelProgram kp = KernelProgram::Compile(preds, query, SlotEnv(query));
  ASSERT_TRUE(kp.usable());
  const std::vector<Tuple>& rows = db_.FindTable("M").ValueOrDie()->rows();
  std::vector<int32_t> fixed_hits, fixed_mis;
  kp.EvalRows(rows, 0, rows.size(), &fixed_hits, &fixed_mis, nullptr);
  KernelState state;
  std::vector<int32_t> adaptive_hits, adaptive_mis;
  for (size_t i = 0; i < rows.size(); ++i) {  // one call per row: many ticks
    std::vector<int32_t> h, m;
    kp.EvalRows(rows, i, i + 1, &h, &m, &state);
    adaptive_hits.insert(adaptive_hits.end(), h.begin(), h.end());
    adaptive_mis.insert(adaptive_mis.end(), m.begin(), m.end());
  }
  EXPECT_EQ(adaptive_hits, fixed_hits);
  // The raw mismatch lists may legitimately differ: a reordered conjunct can
  // decide a row false before the corrupt column is ever touched. What must
  // agree is the resolved outcome — hits plus the interpreter's verdict over
  // whichever rows each order routed to fallback.
  CompileEnv cenv;
  cenv.schema = &schema_;
  PredProgram oracle = PredProgram::Compile(preds, query, cenv);
  auto resolve = [&](const std::vector<int32_t>& hits,
                     const std::vector<int32_t>& mis) {
    std::vector<int32_t> out = hits;
    for (int32_t m : mis) {
      if (OracleVerdict(oracle, rows[static_cast<size_t>(m)])) {
        out.push_back(m);
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(resolve(adaptive_hits, adaptive_mis),
            resolve(fixed_hits, fixed_mis));
  // Either way, only the deliberately corrupt rows may route to fallback.
  for (int32_t m : fixed_mis) {
    EXPECT_EQ(m % 97, 42) << "row " << m;
  }
  for (int32_t m : adaptive_mis) {
    EXPECT_EQ(m % 97, 42) << "row " << m;
  }
}

TEST_F(KernelTest, ScanModeAgreesWithSlotMode) {
  Query query = Parse("SELECT M.ID FROM M WHERE M.NUM >= 100 AND M.VAL >= "
                      "0.25");
  PredSet preds = query.AllPredicates();
  KernelProgram slot = KernelProgram::Compile(preds, query, SlotEnv(query));
  KernelProgram scan = KernelProgram::Compile(preds, query, ScanEnv(query));
  ASSERT_TRUE(slot.usable());
  ASSERT_TRUE(scan.usable());
  const StoredTable& m = *db_.FindTable("M").ValueOrDie();
  std::vector<int32_t> slot_hits, slot_mis;
  slot.EvalRows(m.rows(), 0, m.rows().size(), &slot_hits, &slot_mis, nullptr);
  std::vector<int64_t> scan_hits, scan_mis;
  scan.EvalScan(m, 0, m.num_rows(), &scan_hits, &scan_mis, nullptr);
  ASSERT_EQ(scan_hits.size(), slot_hits.size());
  for (size_t i = 0; i < scan_hits.size(); ++i) {
    EXPECT_EQ(scan_hits[i], static_cast<int64_t>(slot_hits[i]));
  }
  ASSERT_EQ(scan_mis.size(), slot_mis.size());
  for (size_t i = 0; i < scan_mis.size(); ++i) {
    EXPECT_EQ(scan_mis[i], static_cast<int64_t>(slot_mis[i]));
  }
}

TEST_F(KernelTest, EvalBatchRespectsTheIncomingSelection) {
  // EvalBatch must only look at live rows and emit underlying row indices —
  // exactly the discipline FILTER relies on to chain selections.
  Query query = Parse("SELECT M.ID FROM M WHERE M.NUM >= 100");
  PredSet preds = query.AllPredicates();
  KernelProgram kp = KernelProgram::Compile(preds, query, SlotEnv(query));
  ASSERT_TRUE(kp.usable());
  RowBatch b;
  b.rows = db_.FindTable("M").ValueOrDie()->rows();
  b.sel.active = true;
  for (int32_t i = 0; i < static_cast<int32_t>(b.rows.size()); i += 3) {
    b.sel.idx.push_back(i);  // every third row is live
  }
  std::vector<int32_t> hits, mis;
  kp.EvalBatch(b, &hits, &mis, nullptr);
  std::set<int32_t> live(b.sel.idx.begin(), b.sel.idx.end());
  EXPECT_TRUE(std::is_sorted(hits.begin(), hits.end()));
  std::set<int32_t> seen;
  for (int32_t i : hits) {
    EXPECT_TRUE(live.count(i)) << "kernel decided a dead row " << i;
    EXPECT_TRUE(seen.insert(i).second) << "duplicate survivor " << i;
  }
  for (int32_t i : mis) {
    EXPECT_TRUE(live.count(i)) << "kernel flagged a dead row " << i;
  }
  // Dense evaluation restricted to the same live set agrees.
  CompileEnv cenv;
  cenv.schema = &schema_;
  PredProgram oracle = PredProgram::Compile(preds, query, cenv);
  std::set<int32_t> mis_set(mis.begin(), mis.end());
  for (int32_t i : b.sel.idx) {
    if (mis_set.count(i)) continue;
    EXPECT_EQ(seen.count(i) != 0,
              OracleVerdict(oracle, b.rows[static_cast<size_t>(i)]))
        << "row " << i;
  }
}

TEST_F(KernelTest, CorruptRowsRouteToMismatch) {
  // Every 97th row stores a string in the int64 NUM column; the kernel must
  // refuse to decide exactly those rows rather than guessing.
  Query query = Parse("SELECT M.ID FROM M WHERE M.NUM >= 0");
  PredSet preds = query.AllPredicates();
  KernelProgram kp = KernelProgram::Compile(preds, query, SlotEnv(query));
  ASSERT_TRUE(kp.usable());
  const std::vector<Tuple>& rows = db_.FindTable("M").ValueOrDie()->rows();
  std::vector<int32_t> hits, mis;
  kp.EvalRows(rows, 0, rows.size(), &hits, &mis, nullptr);
  std::set<int32_t> mis_set(mis.begin(), mis.end());
  for (size_t i = 0; i < rows.size(); ++i) {
    bool corrupt = rows[i][3].is_string();
    EXPECT_EQ(mis_set.count(static_cast<int32_t>(i)) != 0, corrupt)
        << "row " << i;
  }
  EXPECT_FALSE(mis.empty()) << "the corrupt rows never reached the kernel";
}

TEST_F(KernelTest, UnfusablePredicatesFallBackEntirely) {
  // Division ends the fused prefix; a conjunction that is nothing but a
  // division must not produce a usable kernel at all.
  Query query = Parse("SELECT M.ID FROM M WHERE M.NUM / 2 >= 10");
  PredSet preds = query.AllPredicates();
  KernelProgram kp = KernelProgram::Compile(preds, query, SlotEnv(query));
  EXPECT_FALSE(kp.usable());
  EXPECT_EQ(kp.fused(), 0);
  EXPECT_EQ(kp.fallback_preds(), 1);
  EXPECT_EQ(kp.remainder().ToVector().size(), 1u);
}

TEST_F(KernelTest, MaximalPrefixSplitsAroundDivision) {
  // Pred ids are WHERE order: [NUM >= 20] fuses, [NUM / 2 >= 10] ends the
  // prefix, and everything after it stays interpreted even if fusible.
  Query query = Parse(
      "SELECT M.ID FROM M WHERE M.NUM >= 20 AND M.NUM / 2 >= 10 "
      "AND M.VAL >= 0.5");
  PredSet preds = query.AllPredicates();
  KernelProgram kp = KernelProgram::Compile(preds, query, SlotEnv(query));
  ASSERT_TRUE(kp.usable());
  EXPECT_EQ(kp.fused(), 1);
  EXPECT_EQ(kp.remainder().ToVector().size(), 2u);
}

// ---------------------------------------------------------------------------
// KeyKernel and join-key hashing.
// ---------------------------------------------------------------------------

TEST_F(KernelTest, KeyKernelAgreesWithExprProgram) {
  Query query = Parse("SELECT M.ID FROM M WHERE M.NUM = 3");
  const Expr& key = *query.predicate(0).lhs;  // bare M.NUM column
  KeyKernel kk = KeyKernel::Compile(key, query, SlotEnv(query));
  ASSERT_TRUE(kk.usable());
  CompileEnv cenv;
  cenv.schema = &schema_;
  ExprProgram oracle = ExprProgram::Compile(key, cenv);
  for (const Tuple& row : db_.FindTable("M").ValueOrDie()->rows()) {
    int64_t v = 0;
    bool is_null = false;
    bool decided = kk.EvalInt(row, &v, &is_null);
    ProgramCtx ctx;
    ctx.row = &row;
    auto want = oracle.Eval(ctx);
    ASSERT_TRUE(want.ok());
    if (!decided) {
      // Type mismatch: exactly the corrupt (string-in-int) rows.
      EXPECT_TRUE(row[3].is_string());
      continue;
    }
    EXPECT_EQ(is_null, want.value().is_null());
    if (!is_null) EXPECT_EQ(v, want.value().AsInt());
  }
}

TEST(KernelHashTest, Int64KeyHashMatchesGenericJoinHash) {
  std::mt19937_64 rng(17);
  for (int i = 0; i < 2000; ++i) {
    int64_t v = static_cast<int64_t>(rng());
    Datum d(v);
    EXPECT_EQ(HashInt64JoinKey(v), JoinHashTable::HashKey(&d, 1)) << v;
  }
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1}}) {
    Datum d(v);
    EXPECT_EQ(HashInt64JoinKey(v), JoinHashTable::HashKey(&d, 1));
  }
  Datum null = Datum::NullValue();
  EXPECT_EQ(HashNullJoinKey(), JoinHashTable::HashKey(&null, 1));
}

// ---------------------------------------------------------------------------
// Constant-fold divide-by-zero guard (ExprProgram::Compile).
// ---------------------------------------------------------------------------

TEST(ExprProgramFoldTest, DivisionByConstantZeroIsNotFolded) {
  CompileEnv env;
  ProgramCtx ctx;
  // 5 / 0 keeps its kDiv step (IsConstant() false) and still evaluates to
  // the interpreter's runtime NULL.
  auto by_int_zero = ExprProgram::Compile(
      *Expr::Binary(ExprKind::kDiv, Expr::Literal(Datum(int64_t{5})),
                    Expr::Literal(Datum(int64_t{0}))),
      env);
  EXPECT_FALSE(by_int_zero.IsConstant());
  auto v = by_int_zero.Eval(ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.value().is_null());

  auto by_dbl_zero = ExprProgram::Compile(
      *Expr::Binary(ExprKind::kDiv, Expr::Literal(Datum(1.5)),
                    Expr::Literal(Datum(0.0))),
      env);
  EXPECT_FALSE(by_dbl_zero.IsConstant());
  v = by_dbl_zero.Eval(ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.value().is_null());

  auto by_null = ExprProgram::Compile(
      *Expr::Binary(ExprKind::kDiv, Expr::Literal(Datum(int64_t{5})),
                    Expr::Literal(Datum::NullValue())),
      env);
  EXPECT_FALSE(by_null.IsConstant());
  v = by_null.Eval(ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.value().is_null());

  // A nonzero constant divisor still folds — the guard is surgical.
  auto folded = ExprProgram::Compile(
      *Expr::Binary(ExprKind::kDiv, Expr::Literal(Datum(int64_t{10})),
                    Expr::Literal(Datum(int64_t{2}))),
      env);
  EXPECT_TRUE(folded.IsConstant());
  EXPECT_EQ(folded.ConstantValue().AsInt(), 5);

  // A zero divisor that is only one side of a deeper fold: (4 - 4) folds to
  // 0 first, then the division above it must refuse to fold.
  auto nested = ExprProgram::Compile(
      *Expr::Binary(ExprKind::kDiv, Expr::Literal(Datum(int64_t{8})),
                    Expr::Binary(ExprKind::kSub,
                                 Expr::Literal(Datum(int64_t{4})),
                                 Expr::Literal(Datum(int64_t{4})))),
      env);
  EXPECT_FALSE(nested.IsConstant());
  v = nested.Eval(ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v.value().is_null());
}

}  // namespace
}  // namespace starburst
