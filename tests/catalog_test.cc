// Unit tests for the catalog layer and the synthetic catalog generator.

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/synthetic.h"

namespace starburst {
namespace {

TableDef SimpleTable(const std::string& name, int cols = 2) {
  TableDef t;
  t.name = name;
  for (int i = 0; i < cols; ++i) {
    ColumnDef c;
    c.name = "c" + std::to_string(i);
    c.distinct_values = 10;
    t.columns.push_back(c);
  }
  t.row_count = 100;
  return t;
}

TEST(CatalogTest, AddAndFindTables) {
  Catalog cat;
  auto id = cat.AddTable(SimpleTable("orders"));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(cat.table(id.value()).name, "orders");
  EXPECT_TRUE(cat.FindTable("orders").ok());
  EXPECT_FALSE(cat.FindTable("nope").ok());
  EXPECT_EQ(cat.FindTable("nope").status().code(), StatusCode::kNotFound);
}

TEST(CatalogTest, RejectsInvalidTables) {
  Catalog cat;
  EXPECT_FALSE(cat.AddTable(TableDef{}).ok());  // empty name + no columns
  ASSERT_TRUE(cat.AddTable(SimpleTable("t")).ok());
  EXPECT_EQ(cat.AddTable(SimpleTable("t")).status().code(),
            StatusCode::kAlreadyExists);

  TableDef bad_site = SimpleTable("s");
  bad_site.site = 99;
  EXPECT_FALSE(cat.AddTable(bad_site).ok());

  TableDef bad_btree = SimpleTable("b");
  bad_btree.storage = StorageKind::kBTree;  // no key
  EXPECT_FALSE(cat.AddTable(bad_btree).ok());

  TableDef bad_key = SimpleTable("k");
  bad_key.storage = StorageKind::kBTree;
  bad_key.btree_key = {7};
  EXPECT_FALSE(cat.AddTable(bad_key).ok());
}

TEST(CatalogTest, Indexes) {
  Catalog cat;
  ASSERT_TRUE(cat.AddTable(SimpleTable("t", 3)).ok());
  IndexDef ix;
  ix.name = "t_c1";
  ix.key_columns = {1};
  EXPECT_TRUE(cat.AddIndex("t", ix).ok());
  EXPECT_EQ(cat.AddIndex("t", ix).code(), StatusCode::kAlreadyExists);
  IndexDef bad;
  bad.name = "bad";
  bad.key_columns = {9};
  EXPECT_FALSE(cat.AddIndex("t", bad).ok());
  EXPECT_FALSE(cat.AddIndex("missing", ix).ok());
}

TEST(CatalogTest, Sites) {
  Catalog cat;
  EXPECT_EQ(cat.num_sites(), 1);  // query site always exists
  SiteId ny = cat.AddSite("N.Y.");
  SiteId ny2 = cat.AddSite("N.Y.");
  EXPECT_EQ(ny, ny2);  // idempotent
  EXPECT_EQ(cat.num_sites(), 2);
  EXPECT_EQ(cat.site_name(ny), "N.Y.");
  EXPECT_EQ(cat.FindSite("N.Y.").ValueOrDie(), ny);
  EXPECT_FALSE(cat.FindSite("L.A.").ok());
  EXPECT_EQ(cat.AllSites(), (std::vector<SiteId>{0, 1}));
}

TEST(CatalogTest, FindColumn) {
  TableDef t = SimpleTable("t", 3);
  EXPECT_EQ(t.FindColumn("c1"), 1);
  EXPECT_EQ(t.FindColumn("zzz"), -1);
}

TEST(SyntheticCatalogTest, DeterministicWithSeed) {
  SyntheticCatalogOptions opts;
  opts.num_tables = 6;
  opts.seed = 123;
  Catalog a = MakeSyntheticCatalog(opts);
  Catalog b = MakeSyntheticCatalog(opts);
  ASSERT_EQ(a.num_tables(), b.num_tables());
  for (int i = 0; i < a.num_tables(); ++i) {
    EXPECT_EQ(a.table(i).row_count, b.table(i).row_count);
    EXPECT_EQ(a.table(i).storage, b.table(i).storage);
    EXPECT_EQ(a.table(i).indexes.size(), b.table(i).indexes.size());
  }
}

TEST(SyntheticCatalogTest, ChainSchemaIsJoinable) {
  SyntheticCatalogOptions opts;
  opts.num_tables = 5;
  Catalog cat = MakeSyntheticCatalog(opts);
  ASSERT_EQ(cat.num_tables(), 5);
  for (int i = 1; i < 5; ++i) {
    const TableDef& t = cat.table(i);
    EXPECT_GE(t.FindColumn("fk0"), 0) << t.name;
    EXPECT_GE(t.FindColumn("id"), 0) << t.name;
  }
}

TEST(SyntheticCatalogTest, RowCountsWithinBounds) {
  SyntheticCatalogOptions opts;
  opts.num_tables = 10;
  opts.min_rows = 500;
  opts.max_rows = 5000;
  Catalog cat = MakeSyntheticCatalog(opts);
  for (int i = 0; i < cat.num_tables(); ++i) {
    EXPECT_GE(cat.table(i).row_count, 500);
    EXPECT_LE(cat.table(i).row_count, 5000);
    EXPECT_GE(cat.table(i).data_pages, 1);
  }
}

TEST(SyntheticCatalogTest, SitesRoundRobin) {
  SyntheticCatalogOptions opts;
  opts.num_tables = 6;
  opts.num_sites = 3;
  Catalog cat = MakeSyntheticCatalog(opts);
  EXPECT_EQ(cat.num_sites(), 3);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(cat.table(i).site, i % 3);
  }
}

TEST(PaperCatalogTest, MatchesSection21) {
  Catalog cat = MakePaperCatalog();
  const TableDef& dept = cat.table(cat.FindTable("DEPT").ValueOrDie());
  const TableDef& emp = cat.table(cat.FindTable("EMP").ValueOrDie());
  EXPECT_GE(dept.FindColumn("DNO"), 0);
  EXPECT_GE(dept.FindColumn("MGR"), 0);
  EXPECT_GE(emp.FindColumn("DNO"), 0);
  EXPECT_GE(emp.FindColumn("NAME"), 0);
  EXPECT_GE(emp.FindColumn("ADDRESS"), 0);
  ASSERT_EQ(emp.indexes.size(), 1u);
  EXPECT_EQ(emp.indexes[0].name, "EMP_DNO_IX");
  EXPECT_EQ(emp.indexes[0].key_columns, (std::vector<int>{1}));
}

TEST(PaperCatalogTest, DistributedVariantPlacesDeptRemotely) {
  PaperCatalogOptions opts;
  opts.distributed = true;
  Catalog cat = MakePaperCatalog(opts);
  EXPECT_EQ(cat.num_sites(), 3);  // query site + N.Y. + L.A.
  SiteId ny = cat.FindSite("N.Y.").ValueOrDie();
  EXPECT_EQ(cat.table(cat.FindTable("DEPT").ValueOrDie()).site, ny);
  EXPECT_EQ(cat.table(cat.FindTable("EMP").ValueOrDie()).site, 0);
}

}  // namespace
}  // namespace starburst
