// Unit tests for the STAR interpreter: alternative semantics (inclusive vs
// exclusive), conditions, where-bindings, ∀-expansion, map-over-SAP
// semantics, requirement accumulation, error handling, and the recursion
// guard.

#include <gtest/gtest.h>

#include "catalog/synthetic.h"
#include "sql/parser.h"
#include "star/dsl_parser.h"
#include "test_util.h"

namespace starburst {
namespace {

class StarEngineTest : public ::testing::Test {
 protected:
  StarEngineTest()
      : catalog_(MakePaperCatalog()),
        query_(ParseSql(catalog_,
                        "SELECT EMP.NAME FROM DEPT, EMP WHERE "
                        "DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO")
                   .ValueOrDie()) {}

  StreamSpec DeptSpec() {
    StreamSpec s;
    s.tables = QuantifierSet::Single(0);
    s.preds = PredSet::Single(0);
    return s;
  }
  StreamSpec EmpSpec() {
    StreamSpec s;
    s.tables = QuantifierSet::Single(1);
    return s;
  }

  Catalog catalog_;
  Query query_;
};

TEST_F(StarEngineTest, AccessRootGeneratesScanAndIndexAlternatives) {
  EngineHarness h(query_, DefaultRuleSet());
  auto sap = h.engine().EvalStar(
      "AccessRoot", {RuleValue(EmpSpec()), RuleValue(PredSet{})});
  ASSERT_TRUE(sap.ok()) << sap.status().ToString();
  // Heap scan + one index plan.
  ASSERT_EQ(sap.value().size(), 2u);
  EXPECT_EQ(sap.value()[0]->name(), "ACCESS");
  EXPECT_EQ(sap.value()[1]->name(), "GET");
}

TEST_F(StarEngineTest, ExclusiveStarTakesFirstApplicableOnly) {
  // TableAccess is exclusive on storage kind: exactly one plan.
  EngineHarness h(query_, DefaultRuleSet());
  auto sap = h.engine().EvalStar(
      "TableAccess", {RuleValue(DeptSpec()), RuleValue(PredSet::Single(0))});
  ASSERT_TRUE(sap.ok()) << sap.status().ToString();
  ASSERT_EQ(sap.value().size(), 1u);
  EXPECT_EQ(sap.value()[0]->flavor, "heap");
}

TEST_F(StarEngineTest, InclusiveStarConcatenatesAllApplicable) {
  RuleSet rules = DefaultRuleSet();
  ASSERT_TRUE(LoadRules(&rules, R"(
    star Both(T, P)
      alt 'a': TableAccess(T, P)
      alt 'b': TableAccess(T, P)
    end
  )").ok());
  EngineHarness h(query_, std::move(rules));
  auto sap = h.engine().EvalStar(
      "Both", {RuleValue(DeptSpec()), RuleValue(PredSet::Single(0))});
  ASSERT_TRUE(sap.ok());
  EXPECT_EQ(sap.value().size(), 2u);
  EXPECT_EQ(h.engine().metrics().alternatives_taken, 4);  // 2×Both + 2×TA?
}

TEST_F(StarEngineTest, ConditionsGateAlternatives) {
  RuleSet rules = DefaultRuleSet();
  ASSERT_TRUE(LoadRules(&rules, R"(
    star Gated(T, P)
      alt 'never' if nonempty({}): TableAccess(T, P)
      alt 'always' if empty({}): TableAccess(T, P)
    end
  )").ok());
  EngineHarness h(query_, std::move(rules));
  auto sap = h.engine().EvalStar(
      "Gated", {RuleValue(DeptSpec()), RuleValue(PredSet::Single(0))});
  ASSERT_TRUE(sap.ok());
  EXPECT_EQ(sap.value().size(), 1u);
  // Two Gated conditions plus TableAccess's 'heap' condition (exclusive,
  // first match wins so 'btree' is never evaluated).
  EXPECT_EQ(h.engine().metrics().conditions_evaluated, 3);
}

TEST_F(StarEngineTest, WhereBindingsChain) {
  RuleSet rules = DefaultRuleSet();
  ASSERT_TRUE(LoadRules(&rules, R"(
    star Chained(T, P)
      where A = union(P, {})
      where B = union(A, P)
      alt 'use' if nonempty(B): TableAccess(T, B)
    end
  )").ok());
  EngineHarness h(query_, std::move(rules));
  auto sap = h.engine().EvalStar(
      "Chained", {RuleValue(DeptSpec()), RuleValue(PredSet::Single(0))});
  ASSERT_TRUE(sap.ok()) << sap.status().ToString();
  ASSERT_EQ(sap.value().size(), 1u);
  EXPECT_EQ(sap.value()[0]->props.preds(), PredSet::Single(0));
}

TEST_F(StarEngineTest, ForallExpandsOverIndexes) {
  EngineHarness h(query_, DefaultRuleSet());
  // EMP has one index; forall in AccessRoot expands once.
  auto sap = h.engine().EvalStar(
      "AccessRoot", {RuleValue(EmpSpec()), RuleValue(PredSet{})});
  ASSERT_TRUE(sap.ok());
  EXPECT_EQ(h.engine().metrics().foreach_expansions, 1);
  // DEPT has no indexes; forall contributes nothing.
  h.engine().metrics().Reset();
  auto dept = h.engine().EvalStar(
      "AccessRoot", {RuleValue(DeptSpec()), RuleValue(PredSet::Single(0))});
  ASSERT_TRUE(dept.ok());
  EXPECT_EQ(dept.value().size(), 1u);
  EXPECT_EQ(h.engine().metrics().foreach_expansions, 0);
}

TEST_F(StarEngineTest, OpRefMapsOverInputSapCartesianProduct) {
  // A STAR whose JOIN input SAPs have 1 (DEPT) and 2 (EMP) alternatives
  // yields 2 joins — the §2.2 map semantics.
  RuleSet rules = DefaultRuleSet();
  ASSERT_TRUE(LoadRules(&rules, R"(
    star MapJoin(T1, T2, P)
      alt 'x':
        JOIN:NL(Glue(T1, {}), Glue(T2, {});
                join_preds = join_preds(P, T1, T2), residual_preds = {})
    end
  )").ok());
  EngineHarness h(query_, std::move(rules));
  auto sap = h.engine().EvalStar(
      "MapJoin", {RuleValue(DeptSpec()), RuleValue(EmpSpec()),
                  RuleValue(PredSet::Single(1))});
  ASSERT_TRUE(sap.ok()) << sap.status().ToString();
  EXPECT_EQ(sap.value().size(), 2u);  // 1 DEPT plan × 2 EMP plans
}

TEST_F(StarEngineTest, RequirementsAccumulateUntilGlue) {
  // RemoteJoin requires [site=s] on both streams; SitedJoin's C1 then adds
  // [temp] on the inner when its natural site differs. We reproduce the
  // chain by hand: Require -> Require -> inspect.
  RuleSet rules = DefaultRuleSet();
  ASSERT_TRUE(LoadRules(&rules, R"(
    star Probe(T, P)
      alt 'x':
        Inner(T[site = 0][temp], P)
    end
    star Inner(T, P)
      alt 'check' if and(eq(required_site(T), 0), composite(T)):
        TableAccess(T, P)
      alt 'single' if not(composite(T)):
        Glue(T, P)
    end
  )").ok());
  EngineHarness h(query_, std::move(rules));
  auto sap = h.engine().EvalStar(
      "Probe", {RuleValue(DeptSpec()), RuleValue(PredSet::Single(0))});
  ASSERT_TRUE(sap.ok()) << sap.status().ToString();
  // Glue satisfied both accumulated requirements: a temp at site 0.
  ASSERT_GE(sap.value().size(), 1u);
  for (const PlanPtr& p : sap.value()) {
    EXPECT_TRUE(p->props.temp());
    EXPECT_EQ(p->props.site(), 0);
  }
}

TEST_F(StarEngineTest, UnresolvedStreamIsAnError) {
  RuleSet rules = DefaultRuleSet();
  ASSERT_TRUE(LoadRules(&rules, R"(
    star Bad(T, P)
      alt 'oops': SORT(T; order = access_cols(T, P))
    end
  )").ok());
  EngineHarness h(query_, std::move(rules));
  auto sap = h.engine().EvalStar(
      "Bad", {RuleValue(DeptSpec()), RuleValue(PredSet::Single(0))});
  ASSERT_FALSE(sap.ok());
  EXPECT_NE(sap.status().message().find("Glue"), std::string::npos);
}

TEST_F(StarEngineTest, UnknownStarFunctionParamAreErrors) {
  EngineHarness h(query_, DefaultRuleSet());
  EXPECT_FALSE(h.engine().EvalStar("NoSuchStar", {}).ok());

  RuleSet rules = DefaultRuleSet();
  ASSERT_TRUE(LoadRules(&rules, R"(
    star BadFn(T, P)
      alt 'x' if no_such_fn(P): TableAccess(T, P)
    end
    star BadParam(T, P)
      alt 'x': TableAccess(T, Undefined)
    end
  )").ok());
  EngineHarness h2(query_, std::move(rules));
  EXPECT_FALSE(h2.engine()
                   .EvalStar("BadFn", {RuleValue(DeptSpec()),
                                       RuleValue(PredSet::Single(0))})
                   .ok());
  EXPECT_FALSE(h2.engine()
                   .EvalStar("BadParam", {RuleValue(DeptSpec()),
                                          RuleValue(PredSet::Single(0))})
                   .ok());
}

TEST_F(StarEngineTest, ArityMismatchIsAnError) {
  EngineHarness h(query_, DefaultRuleSet());
  auto r = h.engine().EvalStar("AccessRoot", {RuleValue(DeptSpec())});
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("argument"), std::string::npos);
}

TEST_F(StarEngineTest, CyclicRulesHitTheRecursionGuard) {
  RuleSet rules = DefaultRuleSet();
  ASSERT_TRUE(LoadRules(&rules, R"(
    star LoopA(T, P)
      alt 'x': LoopB(T, P)
    end
    star LoopB(T, P)
      alt 'x': LoopA(T, P)
    end
  )").ok());
  EngineHarness h(query_, std::move(rules));
  auto r = h.engine().EvalStar(
      "LoopA", {RuleValue(DeptSpec()), RuleValue(PredSet::Single(0))});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("recursion"), std::string::npos);
}

TEST_F(StarEngineTest, RecursionGuardUnwindsDepthOnEveryExit) {
  // Regression: the depth counter must be restored on *all* exit paths
  // (including the error return from the guard itself), so a cyclic rule set
  // fails identically on every call and never poisons later evaluations.
  RuleSet rules = DefaultRuleSet();
  ASSERT_TRUE(LoadRules(&rules, R"(
    star LoopA(T, P)
      alt 'x': LoopB(T, P)
    end
    star LoopB(T, P)
      alt 'x': LoopA(T, P)
    end
  )").ok());
  EngineHarness h(query_, std::move(rules));
  std::vector<RuleValue> args = {RuleValue(DeptSpec()),
                                 RuleValue(PredSet::Single(0))};
  for (int i = 0; i < 3; ++i) {
    auto r = h.engine().EvalStar("LoopA", args);
    ASSERT_FALSE(r.ok()) << "call " << i;
    EXPECT_NE(r.status().message().find("recursion"), std::string::npos)
        << "call " << i << ": " << r.status().ToString();
  }
  // A healthy STAR still evaluates from a clean depth afterwards.
  auto ok = h.engine().EvalStar("AccessRoot", args);
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

TEST_F(StarEngineTest, DbcCanRegisterConditionFunctions) {
  // §5: "any STAR having a condition not yet defined would require defining
  // a C function for that condition".
  RuleSet rules = DefaultRuleSet();
  ASSERT_TRUE(LoadRules(&rules, R"(
    star Custom(T, P)
      alt 'gated' if my_condition(T): TableAccess(T, P)
    end
  )").ok());
  EngineHarness h(query_, std::move(rules));
  h.functions().Register(
      "my_condition",
      [](const std::vector<RuleValue>& args,
         const RuleFnContext&) -> Result<RuleValue> {
        const StreamSpec* s = args[0].get_if<StreamSpec>();
        return RuleValue(s != nullptr && s->tables.Contains(0));
      });
  auto sap = h.engine().EvalStar(
      "Custom", {RuleValue(DeptSpec()), RuleValue(PredSet::Single(0))});
  ASSERT_TRUE(sap.ok()) << sap.status().ToString();
  EXPECT_EQ(sap.value().size(), 1u);
  auto none = h.engine().EvalStar(
      "Custom", {RuleValue(EmpSpec()), RuleValue(PredSet{})});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none.value().empty());
}

TEST_F(StarEngineTest, MetricsCountReferencesNotWholeRuleBase) {
  // The paper's efficiency property: evaluating AccessRoot touches only the
  // STARs its definition references (TableAccess, IndexAccess), regardless
  // of how many unrelated STARs exist in the rule base.
  RuleSet rules = DefaultRuleSet();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(LoadRules(&rules,
                          "star Unused" + std::to_string(i) +
                              "(T, P)\n alt 'x': TableAccess(T, P)\nend")
                    .ok());
  }
  EngineHarness h(query_, std::move(rules));
  auto sap = h.engine().EvalStar(
      "AccessRoot", {RuleValue(EmpSpec()), RuleValue(PredSet{})});
  ASSERT_TRUE(sap.ok());
  // AccessRoot + TableAccess + IndexAccess = 3 references, not 53.
  EXPECT_EQ(h.engine().metrics().star_refs, 3);
}

}  // namespace
}  // namespace starburst
