// Unit tests for plan well-formedness (plan/validate.h): predicates must be
// evaluable where they sit, with nested-loop outers binding their tables for
// the inner only.

#include <gtest/gtest.h>

#include "catalog/synthetic.h"
#include "optimizer/optimizer.h"
#include "plan/validate.h"
#include "sql/parser.h"
#include "test_util.h"

namespace starburst {
namespace {

class ValidateTest : public ::testing::Test {
 protected:
  ValidateTest()
      : catalog_(MakePaperCatalog()),
        query_(ParseSql(catalog_,
                        "SELECT EMP.NAME FROM DEPT, EMP WHERE "
                        "DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO")
                   .ValueOrDie()),
        harness_(query_, DefaultRuleSet()) {}

  PlanPtr Access(int q, PredSet preds) {
    const TableDef& t = query_.table_of(q);
    ColumnSet needed = query_.ColumnsNeeded(q);
    OpArgs args;
    args.Set(arg::kQuantifier, static_cast<int64_t>(q));
    args.Set(arg::kCols,
             std::vector<ColumnRef>(needed.begin(), needed.end()));
    args.Set(arg::kPreds, preds);
    (void)t;
    return harness_.factory()
        .Make(op::kAccess, flavor::kHeap, {}, std::move(args))
        .ValueOrDie();
  }

  PlanPtr Join(const char* flv, PlanPtr outer, PlanPtr inner,
               PredSet join_preds) {
    OpArgs args;
    args.Set(arg::kJoinPreds, join_preds);
    args.Set(arg::kResidualPreds, PredSet{});
    return harness_.factory()
        .Make(op::kJoin, flv, {std::move(outer), std::move(inner)},
              std::move(args))
        .ValueOrDie();
  }

  Catalog catalog_;
  Query query_;
  EngineHarness harness_;
};

TEST_F(ValidateTest, WellFormedNestedLoopPasses) {
  // Correlated predicate (DEPT.DNO = EMP.DNO) inside the inner: legal, the
  // outer binds DEPT.
  PlanPtr plan = Join(flavor::kNL, Access(0, PredSet::Single(0)),
                      Access(1, PredSet::Single(1)), PredSet::Single(1));
  EXPECT_TRUE(ValidatePlan(*plan, query_).ok());
}

TEST_F(ValidateTest, CorrelatedPredicateInOuterIsRejected) {
  // The same correlated access on the OUTER side has nothing binding DEPT.
  PlanPtr plan = Join(flavor::kNL, Access(1, PredSet::Single(1)),
                      Access(0, PredSet::Single(0)), PredSet{});
  Status st = ValidatePlan(*plan, query_);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("outside its scope"), std::string::npos);
}

TEST_F(ValidateTest, StandaloneCorrelatedAccessIsRejected) {
  PlanPtr plan = Access(1, PredSet::Single(1));  // references DEPT, unbound
  EXPECT_FALSE(ValidatePlan(*plan, query_).ok());
}

TEST_F(ValidateTest, EveryOptimizerPlanIsWellFormed) {
  // The STAR engine produces well-formed plans by construction; check the
  // whole final frontier on a query that exercises temps and probes.
  DefaultRuleOptions opts;
  opts.hash_join = opts.dynamic_index = opts.forced_projection = true;
  Optimizer optimizer(DefaultRuleSet(opts));
  auto result = optimizer.Optimize(query_).ValueOrDie();
  for (const PlanPtr& p : result.final_plans) {
    EXPECT_TRUE(ValidatePlan(*p, query_).ok());
  }
}

TEST_F(ValidateTest, RootMustCoverItsPredicates) {
  // A plan whose root PREDS mention tables it does not produce is rejected
  // even if each node individually looks fine under some binding. The
  // correlated single-table access *is* such a root.
  PlanPtr inner = Access(1, PredSet::Single(1));
  Status st = ValidatePlan(*inner, query_);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("does not produce"), std::string::npos);
}

}  // namespace
}  // namespace starburst
