// Unit tests for the Glue mechanism (paper §3.2 and Figure 3): veneer
// injection for each required property, plan-table reuse, root-STAR
// re-referencing, cheapest-vs-all modes, and the correlated-predicate rules
// around temps.

#include <gtest/gtest.h>

#include "catalog/synthetic.h"
#include "plan/explain.h"
#include "sql/parser.h"
#include "test_util.h"

namespace starburst {
namespace {

class GlueTest : public ::testing::Test {
 protected:
  GlueTest()
      : catalog_(MakePaperCatalog()),
        query_(ParseSql(catalog_,
                        "SELECT EMP.NAME FROM DEPT, EMP WHERE "
                        "DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO")
                   .ValueOrDie()) {}

  ColumnRef Col(const char* alias, const char* name) {
    return query_.ResolveColumn(alias, name).ValueOrDie();
  }

  StreamSpec DeptSpec() {
    StreamSpec s;
    s.tables = QuantifierSet::Single(0);
    s.preds = PredSet::Single(0);
    return s;
  }
  StreamSpec EmpSpec() {
    StreamSpec s;
    s.tables = QuantifierSet::Single(1);
    return s;
  }

  Catalog catalog_;
  Query query_;
};

TEST_F(GlueTest, ReferencesAccessRootWhenTableIsEmpty) {
  EngineHarness h(query_, DefaultRuleSet());
  auto sap = h.glue().Resolve(DeptSpec());
  ASSERT_TRUE(sap.ok()) << sap.status().ToString();
  EXPECT_GE(sap.value().size(), 1u);
  EXPECT_EQ(h.glue().metrics().root_references, 1);
  // Second call hits the plan table.
  auto again = h.glue().Resolve(DeptSpec());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(h.glue().metrics().root_references, 1);
  EXPECT_GE(h.glue().metrics().base_hits, 1);
}

TEST_F(GlueTest, OrderRequirementAddsSortAndPrunesDominatedIndexPlan) {
  // §3.2's own example: although EMP_DNO_IX naturally yields DNO order, it
  // is cheaper here to scan EMP sequentially and SORT it — Glue keeps the
  // SORTed scan and the dominated (same order, costlier) index plan is
  // Pareto-pruned.
  EngineHarness h(query_, DefaultRuleSet());
  StreamSpec spec = EmpSpec();
  spec.required.order = SortOrder{Col("EMP", "DNO")};
  auto sap = h.glue().Resolve(spec);
  ASSERT_TRUE(sap.ok()) << sap.status().ToString();
  ASSERT_EQ(sap.value().size(), 1u);
  const PlanPtr& p = sap.value()[0];
  EXPECT_TRUE(OrderSatisfies(p->props.order(), *spec.required.order))
      << ExplainPlan(*p, query_);
  EXPECT_EQ(p->name(), "SORT");
  EXPECT_EQ(p->inputs[0]->flavor, "heap");
}

TEST_F(GlueTest, NaturallyOrderedBTreeNeedsNoSortVeneer) {
  // A clustered B-tree table already satisfies an order requirement on its
  // key prefix; Glue must not add a redundant SORT.
  SyntheticCatalogOptions opts;
  opts.num_tables = 1;
  opts.btree_fraction = 1.0;  // T0 stored as a B-tree on id
  Catalog catalog = MakeSyntheticCatalog(opts);
  Query query = ParseSql(catalog, "SELECT id FROM T0").ValueOrDie();
  EngineHarness h(query, DefaultRuleSet());

  StreamSpec spec;
  spec.tables = QuantifierSet::Single(0);
  spec.required.order =
      SortOrder{query.ResolveColumn("T0", "id").ValueOrDie()};
  auto sap = h.glue().Resolve(spec);
  ASSERT_TRUE(sap.ok()) << sap.status().ToString();
  ASSERT_EQ(sap.value().size(), 1u);
  EXPECT_EQ(sap.value()[0]->name(), "ACCESS");
  EXPECT_EQ(sap.value()[0]->flavor, "btree");
}

TEST_F(GlueTest, CheapestModeReturnsOnePlan) {
  EngineOptions opts;
  opts.glue_return_all = false;
  EngineHarness h(query_, DefaultRuleSet(), opts);
  StreamSpec spec = EmpSpec();
  spec.required.order = SortOrder{Col("EMP", "DNO")};
  auto sap = h.glue().Resolve(spec);
  ASSERT_TRUE(sap.ok());
  ASSERT_EQ(sap.value().size(), 1u);

  EngineHarness h_all(query_, DefaultRuleSet());
  auto all = h_all.glue().Resolve(spec);
  ASSERT_TRUE(all.ok());
  double best_all = 1e300;
  for (const PlanPtr& p : all.value()) {
    best_all = std::min(best_all,
                        h_all.cost_model().Total(p->props.cost()));
  }
  EXPECT_DOUBLE_EQ(h.cost_model().Total(sap.value()[0]->props.cost()),
                   best_all);
}

TEST_F(GlueTest, TempRequirementStores) {
  EngineHarness h(query_, DefaultRuleSet());
  StreamSpec spec = DeptSpec();
  spec.required.temp = true;
  auto sap = h.glue().Resolve(spec);
  ASSERT_TRUE(sap.ok());
  for (const PlanPtr& p : sap.value()) {
    EXPECT_TRUE(p->props.temp());
    EXPECT_EQ(p->name(), "STORE");
  }
}

TEST_F(GlueTest, PathRequirementBuildsDynamicIndexAndProbes) {
  EngineHarness h(query_, DefaultRuleSet());
  StreamSpec spec = DeptSpec();
  spec.preds.Insert(1);  // push the join predicate DEPT.DNO = EMP.DNO
  spec.required.path = std::vector<ColumnRef>{Col("DEPT", "DNO")};
  auto sap = h.glue().Resolve(spec);
  ASSERT_TRUE(sap.ok()) << sap.status().ToString();
  ASSERT_GE(sap.value().size(), 1u);
  for (const PlanPtr& p : sap.value()) {
    // temp-index probe applying the correlated predicate, over a STORE with
    // a dynamic path.
    EXPECT_EQ(p->name(), "ACCESS");
    EXPECT_EQ(p->flavor, "temp-index");
    EXPECT_TRUE(p->props.preds().Contains(1));
    ASSERT_EQ(p->inputs.size(), 1u);
    EXPECT_EQ(p->inputs[0]->name(), "STORE");
    // The correlated join predicate is NOT frozen into the temp.
    EXPECT_FALSE(p->inputs[0]->props.preds().Contains(1));
  }
}

TEST_F(GlueTest, CorrelatedPredsStayOutOfPlainTemps) {
  EngineHarness h(query_, DefaultRuleSet());
  StreamSpec spec = EmpSpec();
  spec.preds.Insert(1);  // correlated: references DEPT
  spec.required.temp = true;
  auto sap = h.glue().Resolve(spec);
  ASSERT_TRUE(sap.ok()) << sap.status().ToString();
  for (const PlanPtr& p : sap.value()) {
    EXPECT_TRUE(p->props.preds().Contains(1));
    EXPECT_TRUE(p->props.temp());
    // The STORE below must not apply the correlated predicate.
    const PlanOp* node = p.get();
    while (node->name() != "STORE") {
      ASSERT_FALSE(node->inputs.empty());
      node = node->inputs[0].get();
    }
    EXPECT_FALSE(node->props.preds().Contains(1));
  }
}

TEST_F(GlueTest, CorrelatedPredicateMaterializationStoresThenProbes) {
  // Augment steps 4-5 end to end: a [temp] requirement on a stream carrying
  // a correlated predicate must STORE the uncorrelated content (step 4) and
  // then probe the temp applying the deferred predicate (step 5) — never a
  // FILTER before the STORE, which would freeze one outer tuple's probe
  // value into the materialization.
  EngineHarness h(query_, DefaultRuleSet());
  StreamSpec spec = EmpSpec();
  spec.preds.Insert(1);  // correlated: DEPT.DNO = EMP.DNO references DEPT
  spec.required.temp = true;
  auto sap = h.glue().Resolve(spec);
  ASSERT_TRUE(sap.ok()) << sap.status().ToString();
  ASSERT_GE(sap.value().size(), 1u);
  bool saw_probe_over_store = false;
  for (const PlanPtr& p : sap.value()) {
    if (p->name() != "ACCESS") continue;
    saw_probe_over_store = true;
    // Step 5: the probe is the plain temp flavor (no [paths] requirement)
    // and applies the deferred correlated predicate.
    EXPECT_EQ(p->flavor, flavor::kTemp);
    EXPECT_TRUE(p->props.preds().Contains(1)) << ExplainPlan(*p, query_);
    // Step 4: its input is the STORE, a temp without the correlated
    // predicate, carrying the generated temp name.
    ASSERT_EQ(p->inputs.size(), 1u);
    const PlanPtr& store = p->inputs[0];
    EXPECT_EQ(store->name(), "STORE");
    EXPECT_TRUE(store->props.temp());
    EXPECT_FALSE(store->props.preds().Contains(1));
    EXPECT_FALSE(store->args.GetString(arg::kTempName).empty());
  }
  EXPECT_TRUE(saw_probe_over_store)
      << "no ACCESS(temp)-over-STORE plan came back";
}

TEST_F(GlueTest, TempNamesFollowTheConfiguredPrefix) {
  // Parallel enumeration gives each worker its own prefix so concurrently
  // generated temp names cannot collide.
  EngineHarness h(query_, DefaultRuleSet());
  h.glue().set_temp_prefix("w3_tmp");
  StreamSpec spec = DeptSpec();
  spec.required.temp = true;
  auto sap = h.glue().Resolve(spec);
  ASSERT_TRUE(sap.ok()) << sap.status().ToString();
  ASSERT_GE(sap.value().size(), 1u);
  for (const PlanPtr& p : sap.value()) {
    ASSERT_EQ(p->name(), "STORE");
    EXPECT_EQ(p->args.GetString(arg::kTempName).rfind("w3_tmp", 0), 0u)
        << p->args.GetString(arg::kTempName);
  }
}

TEST_F(GlueTest, AugmentedPlanCachingCanBeDisabled) {
  // With caching off (as during enumeration), Resolve must not grow the
  // plan table with augmented plans — candidate sets stay resolve-order
  // independent.
  EngineHarness h(query_, DefaultRuleSet());
  h.glue().set_cache_augmented(false);
  StreamSpec spec = DeptSpec();
  spec.required.temp = true;
  auto sap = h.glue().Resolve(spec);
  ASSERT_TRUE(sap.ok());
  int64_t plans_after_first = h.table().num_plans();
  auto again = h.glue().Resolve(spec);
  ASSERT_TRUE(again.ok());
  // The base bucket exists (root reference), but no STORE-augmented plans
  // were added on top of it.
  EXPECT_EQ(h.table().num_plans(), plans_after_first);
  for (const PlanPtr& p : again.value()) EXPECT_EQ(p->name(), "STORE");
}

TEST_F(GlueTest, PushedPredicatesReReferenceAccessRoot) {
  // Glue(EMP, {join pred}) must re-reference AccessRoot with the converted
  // join predicate (not retrofit a FILTER), yielding an index probe.
  EngineHarness h(query_, DefaultRuleSet());
  StreamSpec spec = EmpSpec();
  spec.preds.Insert(1);
  auto sap = h.glue().Resolve(spec);
  ASSERT_TRUE(sap.ok());
  bool found_index_probe = false;
  for (const PlanPtr& p : sap.value()) {
    if (p->name() == "GET" && p->inputs[0]->flavor == "index" &&
        p->inputs[0]->props.preds().Contains(1)) {
      found_index_probe = true;
    }
    EXPECT_NE(p->name(), "FILTER");
  }
  EXPECT_TRUE(found_index_probe);
}

TEST_F(GlueTest, Figure3SiteAndOrderScenario) {
  // Figure 3: DEPT stored at N.Y., required [site=L.A., order=DNO]. Glue
  // must deliver plans that are shipped and ordered, choosing SORT+SHIP
  // veneers as needed.
  PaperCatalogOptions opts;
  opts.distributed = true;
  Catalog catalog = MakePaperCatalog(opts);
  Query query = ParseSql(catalog, "SELECT DEPT.DNO FROM DEPT").ValueOrDie();
  SiteId la = catalog.FindSite("L.A.").ValueOrDie();
  SiteId ny = catalog.FindSite("N.Y.").ValueOrDie();

  EngineHarness h(query, DefaultRuleSet());
  StreamSpec spec;
  spec.tables = QuantifierSet::Single(0);
  spec.required.site = la;
  spec.required.order =
      SortOrder{query.ResolveColumn("DEPT", "DNO").ValueOrDie()};
  auto sap = h.glue().Resolve(spec);
  ASSERT_TRUE(sap.ok()) << sap.status().ToString();
  ASSERT_GE(sap.value().size(), 1u);
  for (const PlanPtr& p : sap.value()) {
    EXPECT_EQ(p->props.site(), la);
    EXPECT_TRUE(OrderSatisfies(p->props.order(), *spec.required.order));
    EXPECT_GT(p->props.cost().comm, 0.0);  // something was shipped from N.Y.
  }
  // A later Glue reference requiring only the site finds the plan-table
  // entry created above (Figure 3's "plan 3" effect).
  StreamSpec site_only;
  site_only.tables = QuantifierSet::Single(0);
  site_only.required.site = la;
  int64_t veneers_before = h.glue().metrics().veneers_added;
  auto again = h.glue().Resolve(site_only);
  ASSERT_TRUE(again.ok());
  // The already-augmented plan satisfies [site] with no new veneer for it.
  bool reused = false;
  for (const PlanPtr& p : again.value()) {
    if (p->props.site() == la &&
        h.glue().metrics().veneers_added == veneers_before) {
      reused = true;
    }
  }
  EXPECT_TRUE(reused || h.glue().metrics().veneers_added > veneers_before);
  (void)ny;
}

TEST_F(GlueTest, CompositeStreamWithoutEnumerationIsNotFound) {
  EngineHarness h(query_, DefaultRuleSet());
  StreamSpec spec;
  spec.tables = QuantifierSet::FirstN(2);
  spec.preds = query_.AllPredicates();
  auto sap = h.glue().Resolve(spec);
  ASSERT_FALSE(sap.ok());
  EXPECT_EQ(sap.status().code(), StatusCode::kNotFound);
}

TEST_F(GlueTest, CompositeStreamAfterEnumerationGetsVeneers) {
  EngineHarness h(query_, DefaultRuleSet());
  ASSERT_TRUE(h.Enumerate().ok());
  StreamSpec spec;
  spec.tables = QuantifierSet::FirstN(2);
  spec.preds = query_.AllPredicates();
  spec.required.order = SortOrder{Col("EMP", "NAME")};
  auto sap = h.glue().Resolve(spec);
  ASSERT_TRUE(sap.ok()) << sap.status().ToString();
  for (const PlanPtr& p : sap.value()) {
    EXPECT_TRUE(OrderSatisfies(p->props.order(), *spec.required.order));
  }
}

}  // namespace
}  // namespace starburst
