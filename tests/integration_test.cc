// End-to-end tests: SQL -> optimizer (STAR expansion) -> plan -> executor,
// on the paper's DEPT/EMP example (§2.1, Figure 1) and the synthetic chain
// schema. The central invariant is the paper's §2.2 semantics: every plan in
// a SAP computes the same relation.

#include <gtest/gtest.h>

#include "catalog/synthetic.h"
#include "exec/evaluator.h"
#include "optimizer/optimizer.h"
#include "plan/explain.h"
#include "sql/parser.h"
#include "star/default_rules.h"
#include "storage/datagen.h"

namespace starburst {
namespace {

constexpr double kScale = 0.02;  // executor row scale (catalog stats stay full)

class PaperQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = MakePaperCatalog();
    db_ = std::make_unique<Database>(catalog_);
    ASSERT_TRUE(PopulatePaperDatabase(db_.get(), /*seed=*/7, kScale).ok());
  }

  Query Parse(const std::string& sql) {
    auto q = ParseSql(catalog_, sql);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return std::move(q).value();
  }

  Catalog catalog_;
  std::unique_ptr<Database> db_;
};

TEST_F(PaperQueryTest, Figure1QueryProducesPlan) {
  Query query = Parse(
      "SELECT EMP.NAME, EMP.ADDRESS FROM DEPT, EMP "
      "WHERE DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO");
  DefaultRuleOptions rule_opts;
  rule_opts.merge_join = true;
  Optimizer opt(DefaultRuleSet(rule_opts));
  auto result = opt.Optimize(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result.value().best, nullptr);
  EXPECT_GT(result.value().final_plans.size(), 0u);
  EXPECT_GT(result.value().best->props.card(), 0.0);
  // The chosen plan joins both tables and applies both predicates.
  EXPECT_EQ(result.value().best->props.tables(), query.AllQuantifiers());
  EXPECT_TRUE(
      result.value().best->props.preds().ContainsAll(query.AllPredicates()));
}

TEST_F(PaperQueryTest, AllFinalPlansAgreeWithEachOther) {
  Query query = Parse(
      "SELECT EMP.NAME, EMP.ADDRESS FROM DEPT, EMP "
      "WHERE DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO");
  DefaultRuleOptions rule_opts;
  rule_opts.merge_join = true;
  rule_opts.hash_join = true;
  rule_opts.dynamic_index = true;
  rule_opts.forced_projection = true;
  Optimizer opt(DefaultRuleSet(rule_opts));
  auto result = opt.Optimize(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const SAP& plans = result.value().final_plans;
  ASSERT_GE(plans.size(), 1u);

  auto reference = ExecutePlan(*db_, query, plans[0]);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (size_t i = 1; i < plans.size(); ++i) {
    auto rs = ExecutePlan(*db_, query, plans[i]);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString() << "\nplan:\n"
                         << ExplainPlan(*plans[i], query);
    auto same = SameResult(reference.value(), rs.value(), query.select_list());
    ASSERT_TRUE(same.ok()) << same.status().ToString();
    EXPECT_TRUE(same.value()) << "plan disagrees:\n"
                              << ExplainPlan(*plans[i], query);
  }
}

TEST_F(PaperQueryTest, ExecutionMatchesNaiveJoin) {
  Query query = Parse(
      "SELECT EMP.NAME, EMP.ADDRESS FROM DEPT, EMP "
      "WHERE DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO");
  Optimizer opt(DefaultRuleSet());
  auto result = opt.Optimize(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto rs = ExecutePlan(*db_, query, result.value().best);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();

  // Naive reference: nested loops over the stored tables.
  const StoredTable& dept = *db_->FindTable("DEPT").ValueOrDie();
  const StoredTable& emp = *db_->FindTable("EMP").ValueOrDie();
  int64_t expected = 0;
  for (const Tuple& d : dept.rows()) {
    if (!d[1].is_string() || d[1].AsString() != "Haas") continue;
    for (const Tuple& e : emp.rows()) {
      if (e[1].Compare(d[0]) == 0) ++expected;
    }
  }
  EXPECT_GT(expected, 0);
  EXPECT_EQ(static_cast<int64_t>(rs.value().rows.size()), expected);
}

TEST_F(PaperQueryTest, OrderByIsHonored) {
  Query query = Parse(
      "SELECT EMP.NAME, EMP.SALARY FROM EMP WHERE EMP.SALARY >= 100000 "
      "ORDER BY EMP.SALARY");
  Optimizer opt(DefaultRuleSet());
  auto result = opt.Optimize(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(OrderSatisfies(result.value().best->props.order(),
                             query.order_by()));
  auto rs = ExecutePlan(*db_, query, result.value().best);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  auto sorted = IsSorted(rs.value(), query.order_by());
  ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();
  EXPECT_TRUE(sorted.value());
}

TEST(SyntheticChainTest, MultiWayJoinPlansAgree) {
  SyntheticCatalogOptions opts;
  opts.num_tables = 4;
  opts.min_rows = 200;
  opts.max_rows = 2000;
  opts.seed = 11;
  Catalog catalog = MakeSyntheticCatalog(opts);
  Database db(catalog);
  ASSERT_TRUE(PopulateDatabase(&db, /*seed=*/3, /*scale=*/0.1).ok());

  auto query_r = ParseSql(catalog,
                          "SELECT T0.id, T3.c0 FROM T0, T1, T2, T3 WHERE "
                          "T1.fk0 = T0.id AND T2.fk0 = T1.id AND "
                          "T3.fk0 = T2.id AND T0.c0 = 1");
  ASSERT_TRUE(query_r.ok()) << query_r.status().ToString();
  const Query& query = query_r.value();

  DefaultRuleOptions rule_opts;
  rule_opts.merge_join = true;
  rule_opts.hash_join = true;
  Optimizer opt(DefaultRuleSet(rule_opts));
  auto result = opt.Optimize(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const SAP& plans = result.value().final_plans;
  ASSERT_GE(plans.size(), 1u);

  auto reference = ExecutePlan(db, query, plans[0]);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (size_t i = 1; i < plans.size(); ++i) {
    auto rs = ExecutePlan(db, query, plans[i]);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString() << "\nplan:\n"
                         << ExplainPlan(*plans[i], query);
    auto same = SameResult(reference.value(), rs.value(), query.select_list());
    ASSERT_TRUE(same.ok()) << same.status().ToString();
    EXPECT_TRUE(same.value()) << "plan disagrees:\n"
                              << ExplainPlan(*plans[i], query);
  }
}

TEST(DistributedTest, RemoteTablesGetShipped) {
  PaperCatalogOptions opts;
  opts.distributed = true;
  Catalog catalog = MakePaperCatalog(opts);
  auto query_r = ParseSql(catalog,
                          "SELECT EMP.NAME FROM DEPT, EMP WHERE "
                          "DEPT.DNO = EMP.DNO AND DEPT.MGR = 'Haas' "
                          "AT SITE 'L.A.'");
  ASSERT_TRUE(query_r.ok()) << query_r.status().ToString();
  const Query& query = query_r.value();

  Optimizer opt(DefaultRuleSet());
  auto result = opt.Optimize(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Result must be delivered at L.A.
  SiteId la = catalog.FindSite("L.A.").ValueOrDie();
  EXPECT_EQ(result.value().best->props.site(), la);
  // DEPT lives at N.Y.; some SHIP must appear in the plan.
  std::string explained = ExplainPlan(*result.value().best, query);
  EXPECT_NE(explained.find("SHIP"), std::string::npos) << explained;
}

}  // namespace
}  // namespace starburst
