// End-to-end test of the paper's §5 extensibility story: a Database
// Customizer adds a LEFT OUTERJOIN to the system by supplying
//   (1) a property function   (optimizer side),
//   (2) a run-time routine    (query evaluator side),
//   (3) a STAR referencing it (rule base, via the text DSL),
// without touching any library code. Also covers rule-base editing
// (replace/extend JMeth) and new-property registration.

#include <gtest/gtest.h>

#include "catalog/synthetic.h"
#include "cost/selectivity.h"
#include "exec/evaluator.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"
#include "star/default_rules.h"
#include "star/dsl_parser.h"
#include "storage/datagen.h"
#include "test_util.h"

namespace starburst {
namespace {

/// (1) Property function: like a nested-loop join, but every outer tuple
/// survives (card >= outer card) and the paper's site discipline holds.
Result<PropertyVector> OuterJoinProperties(const OpContext& ctx) {
  const PropertyVector& outer = *ctx.inputs[0];
  const PropertyVector& inner = *ctx.inputs[1];
  if (outer.site() != inner.site()) {
    return Status::InvalidArgument("OUTERJOIN requires co-located inputs");
  }
  PredSet join_preds = ctx.args.GetPreds(arg::kJoinPreds);
  PredSet applied = outer.preds().Union(inner.preds());
  double sel = CombinedSelectivity(ctx.query, join_preds, applied);
  double matched = outer.card() * inner.card() * sel;

  PropertyVector out;
  out.set_tables(outer.tables().Union(inner.tables()));
  ColumnSet cols = outer.cols();
  ColumnSet icols = inner.cols();
  cols.insert(icols.begin(), icols.end());
  out.set_cols(std::move(cols));
  out.set_preds(applied.Union(join_preds));
  out.set_order(outer.order());
  out.set_site(outer.site());
  out.set_card(std::max(outer.card(), matched));
  Cost c = outer.cost() + inner.cost() +
           inner.rescan() * std::max(0.0, outer.card() - 1.0);
  out.set_cost(c);
  out.set_rescan(c);
  return out;
}

/// (2) Run-time routine: pad non-matching outer tuples with NULLs.
Result<std::vector<Tuple>> OuterJoinExec(ExecContext& ctx) {
  auto outer_rows = ctx.EvalInput(0);
  if (!outer_rows.ok()) return outer_rows;
  auto inner_rows = ctx.EvalInput(1);
  if (!inner_rows.ok()) return inner_rows;
  auto outer_schema = ctx.InputSchema(0);
  if (!outer_schema.ok()) return outer_schema.status();
  auto inner_schema = ctx.InputSchema(1);
  if (!inner_schema.ok()) return inner_schema.status();
  Schema out_schema = outer_schema.value();
  out_schema.insert(out_schema.end(), inner_schema.value().begin(),
                    inner_schema.value().end());
  PredSet preds = ctx.node().args.GetPreds(arg::kJoinPreds);

  std::vector<Tuple> out;
  for (const Tuple& o : outer_rows.value()) {
    bool matched = false;
    for (const Tuple& i : inner_rows.value()) {
      Tuple t = o;
      t.insert(t.end(), i.begin(), i.end());
      auto keep = ctx.EvalPredicates(preds, out_schema, t);
      if (!keep.ok()) return keep.status();
      if (keep.value()) {
        matched = true;
        out.push_back(std::move(t));
      }
    }
    if (!matched) {
      Tuple t = o;
      t.resize(out_schema.size(), Datum::NullValue());
      out.push_back(std::move(t));
    }
  }
  return out;
}

class OuterJoinTest : public ::testing::Test {
 protected:
  OuterJoinTest()
      : catalog_(MakePaperCatalog()),
        db_(catalog_),
        query_(ParseSql(catalog_,
                        "SELECT DEPT.DNO, EMP.NAME FROM DEPT, EMP WHERE "
                        "DEPT.DNO = EMP.DNO")
                   .ValueOrDie()),
        harness_(query_, DefaultRuleSet()) {
    // (1) Register the operator with its property function.
    OperatorDef def;
    def.name = "OUTERJOIN";
    def.min_inputs = 2;
    def.max_inputs = 2;
    def.property_fn = OuterJoinProperties;
    EXPECT_TRUE(harness_.operators().Register(std::move(def)).ok());
    // (3) Add a STAR referencing it, from rule text.
    EXPECT_TRUE(LoadRules(&harness_.rules(), R"(
      star OuterJoinRoot(T1, T2, P)
        where JP = join_preds(P, T1, T2)
        alt 'outer-nl':
          OUTERJOIN(Glue(T1, {}), Glue(T2, inner_preds(P, T2));
                    join_preds = JP)
      end
    )", &harness_.operators()).ok());

    // A small database: department 3 has no employees.
    StoredTable* dept = db_.FindTable("DEPT").ValueOrDie();
    for (int64_t d = 0; d < 4; ++d) {
      EXPECT_TRUE(dept->Insert({Datum(d), Datum(std::string("m")),
                                Datum(std::string("d")), Datum(int64_t{1})})
                      .ok());
    }
    StoredTable* emp = db_.FindTable("EMP").ValueOrDie();
    for (int64_t e = 0; e < 6; ++e) {
      EXPECT_TRUE(emp->Insert({Datum(e), Datum(e % 3),
                               Datum("emp" + std::to_string(e)),
                               Datum(std::string("a")), Datum(int64_t{1})})
                      .ok());
    }
    EXPECT_TRUE(db_.Finalize().ok());
  }

  Catalog catalog_;
  Database db_;
  Query query_;
  EngineHarness harness_;
};

TEST_F(OuterJoinTest, NewOperatorFlowsThroughStarsGlueAndEvaluator) {
  StreamSpec dept{QuantifierSet::Single(0), PredSet{}, {}};
  StreamSpec emp{QuantifierSet::Single(1), PredSet{}, {}};
  auto sap = harness_.engine().EvalStar(
      "OuterJoinRoot",
      {RuleValue(dept), RuleValue(emp), RuleValue(PredSet::Single(0))});
  ASSERT_TRUE(sap.ok()) << sap.status().ToString();
  ASSERT_GE(sap.value().size(), 1u);
  const PlanPtr& plan = sap.value()[0];
  EXPECT_EQ(plan->name(), "OUTERJOIN");
  // Property function ran: every outer tuple survives.
  EXPECT_GE(plan->props.card(), 4.0 - 1e-9);

  // (2) Register the run-time routine and execute.
  ExecutorRegistry exec;
  ASSERT_TRUE(exec.Register("OUTERJOIN", OuterJoinExec).ok());
  auto rs = ExecutePlan(db_, query_, plan, &exec);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  // 6 matched employee rows + 1 NULL-padded row for department 3.
  EXPECT_EQ(rs.value().rows.size(), 7u);
  int null_rows = 0;
  for (const Tuple& t : rs.value().rows) {
    if (t.back().is_null()) ++null_rows;
  }
  EXPECT_EQ(null_rows, 1);
}

TEST(RuleEditingTest, AddAlternativesIsIdempotent) {
  RuleSet rules = DefaultRuleSet();  // NL + MG
  EXPECT_EQ(rules.Find("JMeth").ValueOrDie()->alternatives.size(), 2u);
  AddHashJoinAlternative(&rules);
  AddHashJoinAlternative(&rules);  // no duplicate
  AddDynamicIndexAlternative(&rules);
  AddForcedProjectionAlternative(&rules);
  AddMergeJoinAlternative(&rules);  // already there
  EXPECT_EQ(rules.Find("JMeth").ValueOrDie()->alternatives.size(), 5u);
}

TEST(RuleEditingTest, RemovingAStrategyShrinksThePlanSpace) {
  Catalog catalog = MakePaperCatalog();
  Query query = ParseSql(catalog,
                         "SELECT EMP.NAME FROM DEPT, EMP WHERE "
                         "DEPT.DNO = EMP.DNO")
                    .ValueOrDie();
  DefaultRuleOptions wide;
  wide.hash_join = true;
  Optimizer with_hash(DefaultRuleSet(wide));
  Optimizer without_hash(DefaultRuleSet());
  auto r1 = with_hash.Optimize(query);
  auto r2 = without_hash.Optimize(query);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_GT(r1.value().engine_metrics.plans_built,
            r2.value().engine_metrics.plans_built);
}

TEST(NewPropertyTest, BucketizedPropertySurvivesParetoPruning) {
  // §4.5.1's "probably preferable" design: "add a bucketized property to
  // the property vector and a LOLEPOP to achieve that property". A plan
  // distinguished *only* by the new property must not be pruned as
  // dominated.
  PropertyRegistry registry;
  PropertyId bucketized =
      registry.Register("BUCKETIZED", PropertyValue(false)).ValueOrDie();

  Catalog catalog = MakePaperCatalog();
  Query query = ParseSql(catalog, "SELECT EMP.NAME FROM EMP").ValueOrDie();
  EngineHarness h(query, DefaultRuleSet());

  // The DBC's BUCKETIZE LOLEPOP: same stream, hashed into buckets.
  OperatorDef op_def;
  op_def.name = "BUCKETIZE";
  op_def.min_inputs = 1;
  op_def.max_inputs = 1;
  op_def.property_fn = [bucketized](const OpContext& ctx)
      -> Result<PropertyVector> {
    PropertyVector out = *ctx.inputs[0];
    Cost c = out.cost();
    c.cpu += out.card() * 0.5;
    out.set_cost(c);
    out.Set(bucketized, PropertyValue(true));
    return out;
  };
  ASSERT_TRUE(h.operators().Register(std::move(op_def)).ok());

  OpArgs scan_args;
  scan_args.Set(arg::kQuantifier, int64_t{0});
  scan_args.Set(arg::kCols, std::vector<ColumnRef>{ColumnRef{0, 2}});
  PlanPtr plain = h.factory()
                      .Make(op::kAccess, flavor::kHeap, {}, scan_args)
                      .ValueOrDie();
  PlanPtr hashed =
      h.factory().Make("BUCKETIZE", "", {plain}, OpArgs{}).ValueOrDie();
  EXPECT_TRUE(std::get<bool>(*hashed->props.Find(bucketized)));

  // The bucketized plan costs more with otherwise identical built-in
  // properties — yet both survive because the extension property differs.
  PlanTable& table = h.table();
  EXPECT_TRUE(table.Insert(QuantifierSet::Single(0), PredSet{}, hashed));
  EXPECT_TRUE(table.Insert(QuantifierSet::Single(0), PredSet{}, plain));
  EXPECT_EQ(table.num_plans(), 2);
  // And the cheaper plain plan does dominate an identical plain duplicate.
  EXPECT_FALSE(table.Insert(QuantifierSet::Single(0), PredSet{},
                            h.factory()
                                .Make(op::kAccess, flavor::kHeap, {},
                                      scan_args)
                                .ValueOrDie()));
}

TEST(NewPropertyTest, RegisteredPropertyRidesThroughUntouched) {
  // §5: "the default action of any LOLEPOP on any property is to leave the
  // input property unchanged" — properties unknown to a property function
  // simply stay at their default; registering one does not perturb plans.
  PropertyRegistry registry;
  auto id = registry.Register("BUCKETIZED", PropertyValue(false));
  ASSERT_TRUE(id.ok());
  EXPECT_GE(id.value(), prop::kNumBuiltin);

  Catalog catalog = MakePaperCatalog();
  Query query = ParseSql(catalog, "SELECT EMP.NAME FROM EMP").ValueOrDie();
  Optimizer opt(DefaultRuleSet());
  auto result = opt.Optimize(query);
  ASSERT_TRUE(result.ok());
  // The new property is simply absent (default) on existing plans.
  EXPECT_FALSE(result.value().best->props.Has(id.value()));
}

}  // namespace
}  // namespace starburst
