// Unit tests for the storage engine and the query evaluator: every built-in
// LOLEPOP's run-time routine, including sideways information passing
// (correlated nested-loop inners), merge order, and hash NULL semantics.

#include <gtest/gtest.h>

#include "catalog/synthetic.h"
#include "cost/cost_model.h"
#include "exec/evaluator.h"
#include "properties/property_functions.h"
#include "sql/parser.h"
#include "storage/datagen.h"
#include "storage/index.h"

namespace starburst {
namespace {

// ---------------------------------------------------------------------------
// Storage.
// ---------------------------------------------------------------------------

TEST(StoredTableTest, InsertValidatesArity) {
  Catalog cat = MakePaperCatalog();
  Database db(cat);
  StoredTable* dept = db.FindTable("DEPT").ValueOrDie();
  EXPECT_FALSE(dept->Insert({Datum(int64_t{1})}).ok());
  EXPECT_TRUE(dept->Insert({Datum(int64_t{1}), Datum(std::string("m")),
                            Datum(std::string("d")), Datum(int64_t{5})})
                  .ok());
  EXPECT_EQ(dept->num_rows(), 1);
}

TEST(StoredTableTest, BTreeFinalizeSortsRows) {
  Catalog cat;
  TableDef t;
  t.name = "b";
  ColumnDef c;
  c.name = "k";
  t.columns.push_back(c);
  t.storage = StorageKind::kBTree;
  t.btree_key = {0};
  t.row_count = 3;
  cat.AddTable(std::move(t)).ValueOrDie();
  Database db(cat);
  StoredTable* table = db.FindTable("b").ValueOrDie();
  for (int64_t v : {5, 1, 3}) ASSERT_TRUE(table->Insert({Datum(v)}).ok());
  ASSERT_TRUE(db.Finalize().ok());
  EXPECT_EQ(table->row(0)[0].AsInt(), 1);
  EXPECT_EQ(table->row(1)[0].AsInt(), 3);
  EXPECT_EQ(table->row(2)[0].AsInt(), 5);
}

TEST(SecondaryIndexTest, PrefixLookup) {
  Catalog cat = MakePaperCatalog();
  Database db(cat);
  StoredTable* emp = db.FindTable("EMP").ValueOrDie();
  for (int64_t e = 0; e < 20; ++e) {
    ASSERT_TRUE(emp->Insert({Datum(e), Datum(e % 4),
                             Datum("n" + std::to_string(e)),
                             Datum(std::string("a")), Datum(int64_t{100})})
                    .ok());
  }
  ASSERT_TRUE(db.Finalize().ok());
  auto index = db.FindIndex(cat.FindTable("EMP").ValueOrDie(), "EMP_DNO_IX");
  ASSERT_TRUE(index.ok());
  auto hits = index.value()->LookupPrefix({Datum(int64_t{2})});
  EXPECT_EQ(hits.size(), 5u);  // 20 rows, DNO in 0..3
  for (const auto* e : hits) EXPECT_EQ(e->key[0].AsInt(), 2);
  EXPECT_TRUE(index.value()->LookupPrefix({Datum(int64_t{99})}).empty());
  // Entries come back in key order.
  const auto& all = index.value()->entries();
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].key[0].AsInt(), all[i].key[0].AsInt());
  }
}

TEST(DatagenTest, DeterministicAndScaled) {
  SyntheticCatalogOptions opts;
  opts.num_tables = 3;
  opts.min_rows = 1000;
  opts.max_rows = 1000;
  Catalog cat = MakeSyntheticCatalog(opts);
  Database a(cat), b(cat);
  ASSERT_TRUE(PopulateDatabase(&a, 9, 0.1).ok());
  ASSERT_TRUE(PopulateDatabase(&b, 9, 0.1).ok());
  for (int t = 0; t < 3; ++t) {
    ASSERT_EQ(a.table(t).num_rows(), b.table(t).num_rows());
    EXPECT_EQ(a.table(t).num_rows(), 100);
    for (int64_t r = 0; r < a.table(t).num_rows(); ++r) {
      EXPECT_EQ(a.table(t).row(r), b.table(t).row(r));
    }
  }
}

// ---------------------------------------------------------------------------
// Executor fixture: hand-built plans over a small deterministic database.
// ---------------------------------------------------------------------------

class ExecTest : public ::testing::Test {
 protected:
  ExecTest()
      : catalog_(MakePaperCatalog()),
        db_(catalog_),
        query_(ParseSql(catalog_,
                        "SELECT EMP.NAME, EMP.ADDRESS FROM DEPT, EMP WHERE "
                        "DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO")
                   .ValueOrDie()),
        factory_(query_, cost_model_, registry_) {
    EXPECT_TRUE(RegisterBuiltinOperators(&registry_).ok());
    // 4 departments (0..3), managers: Haas runs 0 and 2.
    StoredTable* dept = db_.FindTable("DEPT").ValueOrDie();
    for (int64_t d = 0; d < 4; ++d) {
      std::string mgr = (d % 2 == 0) ? "Haas" : "Other";
      EXPECT_TRUE(dept->Insert({Datum(d), Datum(mgr),
                                Datum("dept" + std::to_string(d)),
                                Datum(int64_t{100})})
                      .ok());
    }
    // 12 employees round-robin over departments.
    StoredTable* emp = db_.FindTable("EMP").ValueOrDie();
    for (int64_t e = 0; e < 12; ++e) {
      EXPECT_TRUE(emp->Insert({Datum(e), Datum(e % 4),
                               Datum("emp" + std::to_string(e)),
                               Datum("addr" + std::to_string(e)),
                               Datum(int64_t{1000 * (e + 1)})})
                      .ok());
    }
    EXPECT_TRUE(db_.Finalize().ok());
  }

  ColumnRef Col(const char* alias, const char* name) {
    return query_.ResolveColumn(alias, name).ValueOrDie();
  }

  PlanPtr DeptScan(PredSet preds = PredSet::Single(0)) {
    OpArgs args;
    args.Set(arg::kQuantifier, int64_t{0});
    args.Set(arg::kCols, std::vector<ColumnRef>{Col("DEPT", "DNO"),
                                                Col("DEPT", "MGR")});
    args.Set(arg::kPreds, preds);
    return factory_.Make(op::kAccess, flavor::kHeap, {}, std::move(args))
        .ValueOrDie();
  }

  PlanPtr EmpIndexGet(PredSet index_preds) {
    OpArgs access;
    access.Set(arg::kQuantifier, int64_t{1});
    access.Set(arg::kIndex, std::string("EMP_DNO_IX"));
    access.Set(arg::kCols,
               std::vector<ColumnRef>{Col("EMP", "DNO"),
                                      ColumnRef{1, ColumnRef::kTidColumn}});
    access.Set(arg::kPreds, index_preds);
    PlanPtr ix =
        factory_.Make(op::kAccess, flavor::kIndex, {}, std::move(access))
            .ValueOrDie();
    OpArgs get;
    get.Set(arg::kQuantifier, int64_t{1});
    get.Set(arg::kCols, std::vector<ColumnRef>{Col("EMP", "NAME"),
                                               Col("EMP", "ADDRESS")});
    get.Set(arg::kPreds, PredSet{});
    return factory_.Make(op::kGet, "", {ix}, std::move(get)).ValueOrDie();
  }

  PlanPtr EmpScan(PredSet preds = PredSet{}) {
    OpArgs args;
    args.Set(arg::kQuantifier, int64_t{1});
    args.Set(arg::kCols,
             std::vector<ColumnRef>{Col("EMP", "DNO"), Col("EMP", "NAME"),
                                    Col("EMP", "ADDRESS")});
    args.Set(arg::kPreds, preds);
    return factory_.Make(op::kAccess, flavor::kHeap, {}, std::move(args))
        .ValueOrDie();
  }

  ResultSet Run(const PlanPtr& plan) {
    auto rs = ExecutePlan(db_, query_, plan);
    EXPECT_TRUE(rs.ok()) << rs.status().ToString();
    return std::move(rs).value();
  }

  Catalog catalog_;
  Database db_;
  Query query_;
  CostModel cost_model_;
  OperatorRegistry registry_;
  PlanFactory factory_;
};

TEST_F(ExecTest, HeapAccessProjectsAndFilters) {
  ResultSet rs = Run(DeptScan());
  EXPECT_EQ(rs.rows.size(), 2u);  // Haas runs DNO 0 and 2
  for (const Tuple& t : rs.rows) {
    EXPECT_EQ(t[1].AsString(), "Haas");
  }
}

TEST_F(ExecTest, PredicateOnUnprojectedColumnWorks) {
  // ACCESS retrieves only DNO/MGR but the predicate references BUDGET: the
  // scan must still evaluate it against the base row.
  int budget_pred =
      const_cast<Query&>(query_)
          .AddPredicate(Expr::Column(Col("DEPT", "BUDGET")), CompareOp::kEq,
                        Expr::Literal(Datum(int64_t{100})))
          .ValueOrDie();
  ResultSet rs = Run(DeptScan(PredSet::Single(budget_pred)));
  EXPECT_EQ(rs.rows.size(), 4u);
}

TEST_F(ExecTest, IndexAccessInKeyOrderWithGet) {
  PlanPtr plan = EmpIndexGet(PredSet{});
  ResultSet rs = Run(plan);
  EXPECT_EQ(rs.rows.size(), 12u);
  auto sorted = IsSorted(rs, {Col("EMP", "DNO")});
  ASSERT_TRUE(sorted.ok());
  EXPECT_TRUE(sorted.value());
  // GET appended NAME and ADDRESS.
  EXPECT_EQ(rs.schema.size(), 4u);
}

TEST_F(ExecTest, SortOrdersStably) {
  OpArgs args;
  args.Set(arg::kOrder, std::vector<ColumnRef>{Col("EMP", "DNO")});
  PlanPtr plan =
      factory_.Make(op::kSort, "", {EmpScan()}, std::move(args)).ValueOrDie();
  ResultSet rs = Run(plan);
  auto sorted = IsSorted(rs, {Col("EMP", "DNO")});
  EXPECT_TRUE(sorted.ValueOrDie());
  // Stability: within DNO 0, ENOs 0,4,8 keep insertion order.
  EXPECT_EQ(rs.rows[0][1].AsString(), "emp0");
  EXPECT_EQ(rs.rows[1][1].AsString(), "emp4");
  EXPECT_EQ(rs.rows[2][1].AsString(), "emp8");
}

TEST_F(ExecTest, NestedLoopWithSidewaysInformationPassing) {
  // Inner: index probe on EMP.DNO with the *join* predicate pushed down —
  // the probe value comes from the current DEPT tuple.
  PlanPtr inner = EmpIndexGet(PredSet::Single(1));
  OpArgs join;
  join.Set(arg::kJoinPreds, PredSet::Single(1));
  join.Set(arg::kResidualPreds, PredSet{});
  PlanPtr plan =
      factory_.Make(op::kJoin, flavor::kNL, {DeptScan(), inner}, join)
          .ValueOrDie();
  ResultSet rs = Run(plan);
  // Haas depts 0,2 × 3 employees each.
  EXPECT_EQ(rs.rows.size(), 6u);
}

TEST_F(ExecTest, MergeJoinMatchesNestedLoop) {
  OpArgs sort_outer;
  sort_outer.Set(arg::kOrder, std::vector<ColumnRef>{Col("DEPT", "DNO")});
  PlanPtr outer =
      factory_.Make(op::kSort, "", {DeptScan()}, std::move(sort_outer))
          .ValueOrDie();
  OpArgs sort_inner;
  sort_inner.Set(arg::kOrder, std::vector<ColumnRef>{Col("EMP", "DNO")});
  PlanPtr inner =
      factory_.Make(op::kSort, "", {EmpScan()}, std::move(sort_inner))
          .ValueOrDie();
  OpArgs join;
  join.Set(arg::kJoinPreds, PredSet::Single(1));
  join.Set(arg::kResidualPreds, PredSet{});
  PlanPtr mg =
      factory_.Make(op::kJoin, flavor::kMG, {outer, inner}, join)
          .ValueOrDie();
  ResultSet rs = Run(mg);
  EXPECT_EQ(rs.rows.size(), 6u);
  // Output arrives in merge-key order.
  auto sorted = IsSorted(rs, {Col("DEPT", "DNO")});
  EXPECT_TRUE(sorted.ValueOrDie());
}

TEST_F(ExecTest, HashJoinMatchesAndSkipsNullKeys) {
  // Add an employee with NULL DNO: it must not join with anything.
  StoredTable* emp = db_.FindTable("EMP").ValueOrDie();
  ASSERT_TRUE(emp->Insert({Datum(int64_t{99}), Datum::NullValue(),
                           Datum(std::string("ghost")),
                           Datum(std::string("nowhere")),
                           Datum(int64_t{0})})
                  .ok());
  ASSERT_TRUE(db_.Finalize().ok());

  OpArgs join;
  join.Set(arg::kJoinPreds, PredSet::Single(1));
  join.Set(arg::kResidualPreds, PredSet{});
  PlanPtr ha =
      factory_.Make(op::kJoin, flavor::kHA, {DeptScan(), EmpScan()}, join)
          .ValueOrDie();
  ResultSet rs = Run(ha);
  EXPECT_EQ(rs.rows.size(), 6u);  // the NULL-DNO ghost matched nothing
}

TEST_F(ExecTest, StoreAndTempAccessRoundTrip) {
  OpArgs store;
  store.Set(arg::kTempName, std::string("t"));
  PlanPtr stored =
      factory_.Make(op::kStore, "", {EmpScan()}, std::move(store))
          .ValueOrDie();
  OpArgs probe;
  probe.Set(arg::kPreds, PredSet::Single(1));  // correlated join pred
  PlanPtr temp_access =
      factory_.Make(op::kAccess, flavor::kTemp, {stored}, std::move(probe))
          .ValueOrDie();
  OpArgs join;
  join.Set(arg::kJoinPreds, PredSet::Single(1));
  join.Set(arg::kResidualPreds, PredSet{});
  PlanPtr nl =
      factory_.Make(op::kJoin, flavor::kNL, {DeptScan(), temp_access}, join)
          .ValueOrDie();
  ResultSet rs = Run(nl);
  EXPECT_EQ(rs.rows.size(), 6u);
}

TEST_F(ExecTest, DynamicIndexProbeViaTempIndex) {
  OpArgs store;
  store.Set(arg::kTempName, std::string("tix"));
  store.Set(arg::kIndexOn, std::vector<ColumnRef>{Col("EMP", "DNO")});
  PlanPtr stored =
      factory_.Make(op::kStore, "", {EmpScan()}, std::move(store))
          .ValueOrDie();
  OpArgs probe;
  probe.Set(arg::kPreds, PredSet::Single(1));
  PlanPtr temp_ix =
      factory_.Make(op::kAccess, flavor::kTempIndex, {stored},
                    std::move(probe))
          .ValueOrDie();
  OpArgs join;
  join.Set(arg::kJoinPreds, PredSet::Single(1));
  join.Set(arg::kResidualPreds, PredSet{});
  PlanPtr nl =
      factory_.Make(op::kJoin, flavor::kNL, {DeptScan(), temp_ix}, join)
          .ValueOrDie();
  ResultSet rs = Run(nl);
  EXPECT_EQ(rs.rows.size(), 6u);
}

TEST_F(ExecTest, FilterAndShipAreStreamTransparent) {
  OpArgs filter;
  filter.Set(arg::kPreds, PredSet::Single(0));
  PlanPtr filtered =
      factory_.Make(op::kFilter, "",
                    {DeptScan(PredSet{})}, std::move(filter))
          .ValueOrDie();
  ResultSet rs = Run(filtered);
  EXPECT_EQ(rs.rows.size(), 2u);

  OpArgs ship;
  ship.Set(arg::kSite, int64_t{0});
  PlanPtr shipped =
      factory_.Make(op::kShip, "", {filtered}, std::move(ship)).ValueOrDie();
  EXPECT_EQ(Run(shipped).rows.size(), 2u);
}

TEST_F(ExecTest, CustomOperatorThroughRegistry) {
  // A DBC-registered "ECHO" operator that duplicates its input stream —
  // exercising the §5 run-time-routine hook.
  OperatorDef echo;
  echo.name = "ECHO";
  echo.min_inputs = 1;
  echo.max_inputs = 1;
  echo.property_fn = [](const OpContext& ctx) -> Result<PropertyVector> {
    PropertyVector out = *ctx.inputs[0];
    out.set_card(out.card() * 2);
    return out;
  };
  ASSERT_TRUE(registry_.Register(std::move(echo)).ok());

  ExecutorRegistry exec_registry;
  ASSERT_TRUE(exec_registry
                  .Register("ECHO",
                            [](ExecContext& ctx) -> Result<std::vector<Tuple>> {
                              auto rows = ctx.EvalInput(0);
                              if (!rows.ok()) return rows;
                              std::vector<Tuple> out = rows.value();
                              out.insert(out.end(), rows.value().begin(),
                                         rows.value().end());
                              return out;
                            })
                  .ok());

  PlanPtr plan =
      factory_.Make("ECHO", "", {DeptScan()}, OpArgs{}).ValueOrDie();
  auto rs = ExecutePlan(db_, query_, plan, &exec_registry);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs.value().rows.size(), 4u);  // 2 Haas rows duplicated
  // Without the registry the evaluator refuses politely.
  auto missing = ExecutePlan(db_, query_, plan);
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kUnimplemented);
}

TEST_F(ExecTest, ProjectionAndCanonicalization) {
  ResultSet rs = Run(EmpScan());
  auto projected = ProjectResult(rs, {Col("EMP", "NAME")});
  ASSERT_TRUE(projected.ok());
  EXPECT_EQ(projected.value().schema.size(), 1u);
  EXPECT_EQ(projected.value().rows.size(), 12u);
  EXPECT_FALSE(ProjectResult(rs, {Col("DEPT", "DNO")}).ok());

  std::vector<Tuple> rows = {{Datum(int64_t{2})}, {Datum(int64_t{1})}};
  std::vector<Tuple> canon = CanonicalRows(rows);
  EXPECT_EQ(canon[0][0].AsInt(), 1);
}

}  // namespace
}  // namespace starburst
