// Tests for plan-fragment sharing and deep correlated evaluation:
//   * §1: "Alternative plans may incorporate the same plan fragment, whose
//     alternatives need be evaluated only once" — the plan table hands the
//     same immutable node to every consumer;
//   * §4.4 sideways information passing through multiple nesting levels.

#include <gtest/gtest.h>

#include <set>

#include "catalog/synthetic.h"
#include "exec/evaluator.h"
#include "optimizer/optimizer.h"
#include "plan/explain.h"
#include "sql/parser.h"
#include "star/default_rules.h"
#include "storage/datagen.h"

namespace starburst {
namespace {

void CollectNodes(const PlanOp* node, std::set<const PlanOp*>* out) {
  out->insert(node);
  for (const PlanPtr& in : node->inputs) CollectNodes(in.get(), out);
}

TEST(SharingTest, AlternativesShareSubplanNodesPhysically) {
  Catalog catalog = MakePaperCatalog();
  Query query = ParseSql(catalog,
                         "SELECT EMP.NAME FROM DEPT, EMP WHERE "
                         "DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO")
                    .ValueOrDie();
  DefaultRuleOptions opts;
  opts.hash_join = true;
  Optimizer optimizer(DefaultRuleSet(opts));
  auto result = optimizer.Optimize(query).ValueOrDie();
  ASSERT_GE(result.final_plans.size(), 2u);

  // The DEPT scan fragment appears in several alternatives; count distinct
  // physical nodes across the whole frontier — shared fragments must not be
  // duplicated.
  std::set<const PlanOp*> all_nodes;
  int total_tree_nodes = 0;
  for (const PlanPtr& p : result.final_plans) {
    std::set<const PlanOp*> nodes;
    CollectNodes(p.get(), &nodes);
    total_tree_nodes += static_cast<int>(nodes.size());
    all_nodes.insert(nodes.begin(), nodes.end());
  }
  EXPECT_LT(static_cast<int>(all_nodes.size()), total_tree_nodes)
      << "no sharing across alternatives at all?";
}

TEST(SharingTest, BloomjoinReusesTheOuterFragmentTwice) {
  // The bloomjoin STAR references Glue(T1, {}) both as the join outer and
  // as the filter source; the plan table returns the same node.
  Catalog cat;
  SiteId ny = cat.AddSite("N.Y.");
  TableDef a;
  ColumnDef id;
  id.name = "id";
  id.distinct_values = 10000;
  id.min_value = 0;
  id.max_value = 9999;
  ColumnDef c = id;
  c.name = "c";
  c.distinct_values = 20;
  c.max_value = 19;
  ColumnDef wide = id;
  wide.name = "wide";
  wide.avg_width = 300;
  a.name = "CUST";
  a.columns = {id, c, wide};
  a.row_count = 10000;
  a.data_pages = 800;
  a.site = ny;
  cat.AddTable(std::move(a)).ValueOrDie();
  TableDef b;
  ColumnDef fk = id;
  fk.name = "fk";
  ColumnDef val = id;
  val.name = "val";
  b.name = "ORDERS";
  b.columns = {fk, val};
  b.row_count = 100000;
  b.data_pages = 500;
  cat.AddTable(std::move(b)).ValueOrDie();

  Query query = ParseSql(cat,
                         "SELECT wide, val FROM CUST, ORDERS WHERE c = 1 "
                         "AND id = fk AT SITE 'N.Y.'")
                    .ValueOrDie();
  DefaultRuleOptions opts;
  opts.bloomjoin = true;
  Optimizer optimizer(DefaultRuleSet(opts));
  auto result = optimizer.Optimize(query).ValueOrDie();
  const PlanPtr* bloom = nullptr;
  for (const PlanPtr& p : result.final_plans) {
    if (PlanSignature(*p).find("FILTERBY") != std::string::npos) bloom = &p;
  }
  ASSERT_NE(bloom, nullptr);
  // Find the CUST access nodes in outer position and under the PROJECT.
  std::set<const PlanOp*> nodes;
  CollectNodes(bloom->get(), &nodes);
  int cust_accesses = 0;
  for (const PlanOp* n : nodes) {
    if (n->name() == op::kAccess &&
        n->props.tables() == QuantifierSet::Single(0)) {
      ++cust_accesses;
    }
  }
  // Physically one node despite two logical uses (the std::set deduped by
  // pointer identity).
  EXPECT_EQ(cust_accesses, 1) << ExplainPlan(**bloom, query);
}

TEST(DeepCorrelationTest, ThreeLevelNestedLoopBindsThroughEveryFrame) {
  // T2's access probes with a predicate on T1, which itself is probed with
  // a predicate on T0 — two levels of sideways information passing active
  // at once when evaluating the innermost stream.
  SyntheticCatalogOptions copts;
  copts.num_tables = 3;
  copts.min_rows = 60;
  copts.max_rows = 120;
  copts.seed = 31;
  copts.btree_fraction = 0.0;
  copts.fk_index_probability = 1.0;
  Catalog catalog = MakeSyntheticCatalog(copts);
  Database db(catalog);
  ASSERT_TRUE(PopulateDatabase(&db, 4, 1.0).ok());
  Query query = ParseSql(catalog,
                         "SELECT T0.id FROM T0, T1, T2 WHERE "
                         "T1.fk0 = T0.id AND T2.fk0 = T1.id")
                    .ValueOrDie();

  // Force a pure left-deep NL plan space: no merge join.
  DefaultRuleOptions nl_only;
  nl_only.merge_join = false;
  OptimizerOptions oopts;
  oopts.engine.allow_composite_inner = false;
  Optimizer optimizer(DefaultRuleSet(nl_only), oopts);
  auto result = optimizer.Optimize(query).ValueOrDie();
  auto rs = ExecutePlan(db, query, result.best);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString() << "\n"
                       << ExplainPlan(*result.best, query);

  // Oracle.
  int64_t expected = 0;
  const StoredTable& t0 = db.table(0);
  const StoredTable& t1 = db.table(1);
  const StoredTable& t2 = db.table(2);
  for (const Tuple& a : t0.rows()) {
    for (const Tuple& b : t1.rows()) {
      if (b[1].Compare(a[0]) != 0) continue;
      for (const Tuple& c : t2.rows()) {
        if (c[1].Compare(b[0]) == 0) ++expected;
      }
    }
  }
  EXPECT_EQ(static_cast<int64_t>(rs.value().rows.size()), expected);
  EXPECT_GT(expected, 0);
}

}  // namespace
}  // namespace starburst
