// Unit tests for the bottom-up join enumerator: canonical split generation,
// joinability gating, the session toggles, and plan-table population
// invariants.

#include <gtest/gtest.h>

#include "catalog/synthetic.h"
#include "sql/parser.h"
#include "star/dsl_parser.h"
#include "test_util.h"

namespace starburst {
namespace {

Catalog ChainCatalog(int n) {
  SyntheticCatalogOptions opts;
  opts.num_tables = n;
  opts.seed = 21;
  return MakeSyntheticCatalog(opts);
}

std::string ChainSql(int n) {
  std::string sql = "SELECT T0.id FROM T0";
  for (int i = 1; i < n; ++i) sql += ", T" + std::to_string(i);
  sql += " WHERE T1.fk0 = T0.id";
  for (int i = 2; i < n; ++i) {
    sql += " AND T" + std::to_string(i) + ".fk0 = T" + std::to_string(i - 1) +
           ".id";
  }
  return sql;
}

TEST(EnumeratorTest, PopulatesEveryConnectedSubset) {
  Catalog cat = ChainCatalog(4);
  Query query = ParseSql(cat, ChainSql(4)).ValueOrDie();
  EngineHarness h(query, DefaultRuleSet());
  ASSERT_TRUE(h.Enumerate().ok());

  auto eligible = [&](QuantifierSet s) {
    return query.EligiblePredicates(s, query.AllPredicates());
  };
  // Chain T0-T1-T2-T3: connected subsets are exactly the contiguous ranges.
  for (int lo = 0; lo < 4; ++lo) {
    for (int hi = lo; hi < 4; ++hi) {
      QuantifierSet s;
      for (int q = lo; q <= hi; ++q) s.Insert(q);
      EXPECT_TRUE(h.table().Lookup(s, eligible(s)).has_value())
          << "missing bucket for " << s.ToString();
    }
  }
  // Disconnected subsets (e.g. {T0, T2}) have no plans without cartesian.
  QuantifierSet disconnected = QuantifierSet::Single(0).Union(
      QuantifierSet::Single(2));
  EXPECT_FALSE(
      h.table().Lookup(disconnected, eligible(disconnected)).has_value());
}

TEST(EnumeratorTest, SplitAccountingMatchesTheory) {
  Catalog cat = ChainCatalog(3);
  Query query = ParseSql(cat, ChainSql(3)).ValueOrDie();
  EngineHarness h(query, DefaultRuleSet());
  ASSERT_TRUE(h.Enumerate().ok());
  const JoinEnumerator::Stats* stats = nullptr;
  // Re-run through a fresh harness to grab stats.
  EngineHarness h2(query, DefaultRuleSet());
  JoinEnumerator e(&h2.engine(), &h2.glue(), &h2.table());
  ASSERT_TRUE(e.Run().ok());
  (void)stats;
  // 3 tables: subsets of size>=2 are {01},{02},{12},{012} -> 4 subsets.
  EXPECT_EQ(e.stats().subsets, 4);
  // Unordered splits: 1 per 2-subset (3) + 3 for the full set.
  EXPECT_EQ(e.stats().splits_considered, 6);
  // Joinable with plan-bearing inputs: the 2-subsets {01} and {12}, plus
  // T0|{12} and {01}|T2 for the full set. The split T1|{02} is pruned
  // because the disconnected {T0,T2} never got plans.
  EXPECT_EQ(e.stats().joinable_pairs, 4);
  EXPECT_EQ(e.stats().join_root_refs, 4);
}

TEST(EnumeratorTest, CartesianToggleAdmitsDisconnectedPairs) {
  Catalog cat = ChainCatalog(3);
  Query query = ParseSql(cat, ChainSql(3)).ValueOrDie();
  EngineOptions opts;
  opts.allow_cartesian = true;
  EngineHarness h(query, DefaultRuleSet(), opts);
  JoinEnumerator e(&h.engine(), &h.glue(), &h.table());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_EQ(e.stats().joinable_pairs, e.stats().splits_considered);
}

TEST(EnumeratorTest, CompositeToggleGatesBushySplits) {
  Catalog cat = ChainCatalog(4);
  Query query = ParseSql(cat, ChainSql(4)).ValueOrDie();
  EngineOptions no_composite;
  no_composite.allow_composite_inner = false;
  EngineHarness h(query, DefaultRuleSet(), no_composite);
  JoinEnumerator e(&h.engine(), &h.glue(), &h.table());
  ASSERT_TRUE(e.Run().ok());
  // The bushy split {T0,T1}|{T2,T3} is skipped entirely (both sides
  // composite, neither may be the inner).
  EngineHarness h2(query, DefaultRuleSet());
  JoinEnumerator e2(&h2.engine(), &h2.glue(), &h2.table());
  ASSERT_TRUE(e2.Run().ok());
  EXPECT_LT(e.stats().joinable_pairs, e2.stats().joinable_pairs);
}

TEST(EnumeratorTest, SingleTableQueryNeedsNoJoins) {
  Catalog cat = ChainCatalog(1);
  Query query = ParseSql(cat, "SELECT T0.id FROM T0").ValueOrDie();
  EngineHarness h(query, DefaultRuleSet());
  JoinEnumerator e(&h.engine(), &h.glue(), &h.table());
  ASSERT_TRUE(e.Run().ok());
  EXPECT_EQ(e.stats().subsets, 0);
  EXPECT_TRUE(
      h.table().Lookup(QuantifierSet::Single(0), PredSet{}).has_value());
}

TEST(EnumeratorTest, EmptyAccessSapIsDescriptiveNotFound) {
  // An AccessRoot whose only alternative never applies produces an empty SAP
  // for every single-table stream — a legitimate "nothing satisfies the
  // requirements" outcome, not an engine invariant violation. The enumerator
  // must surface it as NotFound and name the quantifier it gave up on.
  Catalog cat = ChainCatalog(2);
  Query query = ParseSql(cat, ChainSql(2)).ValueOrDie();
  RuleSet rules = DefaultRuleSet();
  auto stars = ParseRules(R"(
    star AccessRoot(T, P)
      alt 'never' if nonempty({}):
        TableAccess(T, P)
    end
  )");
  ASSERT_TRUE(stars.ok()) << stars.status().ToString();
  for (Star& s : stars.value()) rules.AddOrReplace(std::move(s));
  EngineHarness h(query, std::move(rules));
  JoinEnumerator e(&h.engine(), &h.glue(), &h.table());
  Status st = e.Run();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound) << st.ToString();
  // The message names the quantifier so the failure is actionable.
  EXPECT_NE(st.ToString().find("'T0'"), std::string::npos) << st.ToString();
}

TEST(EnumeratorTest, EmptyQueryIsAnError) {
  Catalog cat = ChainCatalog(1);
  Query query(&cat);
  EngineHarness h(query, DefaultRuleSet());
  JoinEnumerator e(&h.engine(), &h.glue(), &h.table());
  EXPECT_FALSE(e.Run().ok());
}

}  // namespace
}  // namespace starburst
