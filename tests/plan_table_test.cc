// Unit tests for the plan table: hashing on (TABLES, PREDS) and the Pareto
// dominance rule over (cost; ORDER, SITE, TEMP, PATHS).

#include <gtest/gtest.h>

#include "catalog/synthetic.h"
#include "sql/parser.h"
#include "test_util.h"

namespace starburst {
namespace {

class PlanTableTest : public ::testing::Test {
 protected:
  PlanTableTest()
      : catalog_(MakePaperCatalog()),
        query_(ParseSql(catalog_,
                        "SELECT EMP.NAME FROM EMP WHERE EMP.SALARY > 1000")
                   .ValueOrDie()),
        harness_(query_, DefaultRuleSet()) {}

  ColumnRef Col(const char* name) {
    return query_.ResolveColumn("EMP", name).ValueOrDie();
  }

  /// A heap scan with the given predicates.
  PlanPtr Scan(PredSet preds) {
    OpArgs args;
    args.Set(arg::kQuantifier, int64_t{0});
    args.Set(arg::kCols,
             std::vector<ColumnRef>{Col("DNO"), Col("NAME"), Col("SALARY")});
    args.Set(arg::kPreds, preds);
    return harness_.factory()
        .Make(op::kAccess, flavor::kHeap, {}, std::move(args))
        .ValueOrDie();
  }

  PlanPtr Sorted(PlanPtr in, const char* col) {
    OpArgs args;
    args.Set(arg::kOrder, std::vector<ColumnRef>{Col(col)});
    return harness_.factory()
        .Make(op::kSort, "", {std::move(in)}, std::move(args))
        .ValueOrDie();
  }

  Catalog catalog_;
  Query query_;
  EngineHarness harness_;
};

TEST_F(PlanTableTest, LookupMissesBeforeInsertHitsAfter) {
  PlanTable& t = harness_.table();
  QuantifierSet q = QuantifierSet::Single(0);
  EXPECT_FALSE(t.Lookup(q, PredSet{}).has_value());
  EXPECT_TRUE(t.Insert(q, PredSet{}, Scan(PredSet{})));
  std::optional<SAP> bucket = t.Lookup(q, PredSet{});
  ASSERT_TRUE(bucket.has_value());
  EXPECT_EQ(bucket->size(), 1u);
  // Different predicate key = different bucket.
  EXPECT_FALSE(t.Lookup(q, PredSet::Single(0)).has_value());
  EXPECT_EQ(t.num_buckets(), 1);
  EXPECT_EQ(t.num_plans(), 1);
}

TEST_F(PlanTableTest, IdenticalPlanIsDominated) {
  PlanTable& t = harness_.table();
  QuantifierSet q = QuantifierSet::Single(0);
  EXPECT_TRUE(t.Insert(q, PredSet{}, Scan(PredSet{})));
  EXPECT_FALSE(t.Insert(q, PredSet{}, Scan(PredSet{})));
  EXPECT_EQ(t.stats().pruned_dominated, 1);
  EXPECT_EQ(t.num_plans(), 1);
}

TEST_F(PlanTableTest, BetterOrderSurvivesWorseCost) {
  PlanTable& t = harness_.table();
  QuantifierSet q = QuantifierSet::Single(0);
  PlanPtr plain = Scan(PredSet{});
  PlanPtr sorted = Sorted(plain, "DNO");  // more cost, more order
  EXPECT_TRUE(t.Insert(q, PredSet{}, plain));
  EXPECT_TRUE(t.Insert(q, PredSet{}, sorted));  // kept: order is better
  EXPECT_EQ(t.num_plans(), 2);
}

TEST_F(PlanTableTest, CheaperEqualPropertiesEvicts) {
  PlanTable& t = harness_.table();
  QuantifierSet q = QuantifierSet::Single(0);
  // A double-sorted plan costs more with the same final order; inserting
  // the single-sort version evicts it.
  PlanPtr expensive = Sorted(Sorted(Scan(PredSet{}), "NAME"), "DNO");
  PlanPtr cheap = Sorted(Scan(PredSet{}), "DNO");
  EXPECT_TRUE(t.Insert(q, PredSet{}, expensive));
  EXPECT_TRUE(t.Insert(q, PredSet{}, cheap));
  EXPECT_EQ(t.stats().evicted_dominated, 1);
  std::optional<SAP> bucket = t.Lookup(q, PredSet{});
  ASSERT_TRUE(bucket.has_value());
  ASSERT_EQ(bucket->size(), 1u);
  EXPECT_EQ((*bucket)[0].get(), cheap.get());
}

TEST_F(PlanTableTest, LongerOrderPrefixDominatesShorter) {
  PlanPtr one = Sorted(Scan(PredSet{}), "DNO");
  // Same plan sorted by (DNO) vs sorted by (DNO, NAME): the two-column sort
  // satisfies everything the one-column sort does. We fake equal costs by
  // comparing dominance directly.
  OpArgs args;
  args.Set(arg::kOrder, std::vector<ColumnRef>{Col("DNO"), Col("NAME")});
  PlanPtr two = harness_.factory()
                    .Make(op::kSort, "", {Scan(PredSet{})}, std::move(args))
                    .ValueOrDie();
  // two's order satisfies one's requirement; cost is (approximately) equal,
  // so dominance holds one way only.
  EXPECT_TRUE(PlanDominates(*two, *one, harness_.cost_model()) ||
              harness_.cost_model().Total(two->props.cost()) >
                  harness_.cost_model().Total(one->props.cost()));
  EXPECT_FALSE(PlanDominates(*one, *two, harness_.cost_model()));
}

TEST_F(PlanTableTest, PruneDominatedAndCheapest) {
  SAP plans;
  PlanPtr cheap = Scan(PredSet{});
  PlanPtr pricey = Sorted(Sorted(Scan(PredSet{}), "NAME"), "NAME");
  PlanPtr sorted = Sorted(Scan(PredSet{}), "DNO");
  plans = {pricey, cheap, sorted};
  PruneDominated(&plans, harness_.cost_model());
  // 'pricey' has order (NAME): not dominated by 'cheap' (no order) only if
  // its order is not a prefix... (NAME) vs none: cheap has empty order so
  // pricey's order is better; all three can survive except duplicates.
  EXPECT_GE(plans.size(), 2u);
  PlanPtr best = CheapestPlan(plans, harness_.cost_model());
  EXPECT_EQ(best.get(), cheap.get());
  SAP empty;
  EXPECT_EQ(CheapestPlan(empty, harness_.cost_model()), nullptr);
}

TEST_F(PlanTableTest, DifferentSitesDoNotDominate) {
  PaperCatalogOptions opts;
  opts.distributed = true;
  Catalog catalog = MakePaperCatalog(opts);
  Query query = ParseSql(catalog, "SELECT DEPT.DNO FROM DEPT").ValueOrDie();
  EngineHarness h(query, DefaultRuleSet());

  OpArgs access;
  access.Set(arg::kQuantifier, int64_t{0});
  access.Set(arg::kCols, std::vector<ColumnRef>{
                             query.ResolveColumn("DEPT", "DNO").ValueOrDie()});
  PlanPtr at_ny = h.factory()
                      .Make(op::kAccess, flavor::kHeap, {}, access)
                      .ValueOrDie();
  OpArgs ship;
  ship.Set(arg::kSite, int64_t{0});
  PlanPtr at_query =
      h.factory().Make(op::kShip, "", {at_ny}, std::move(ship)).ValueOrDie();
  // Shipping costs more, but the site differs -> both are kept.
  PlanTable& t = h.table();
  EXPECT_TRUE(t.Insert(QuantifierSet::Single(0), PredSet{}, at_ny));
  EXPECT_TRUE(t.Insert(QuantifierSet::Single(0), PredSet{}, at_query));
  EXPECT_EQ(t.num_plans(), 2);
}

}  // namespace
}  // namespace starburst
