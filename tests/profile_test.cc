// Tests for the execution profiler, per-query memory accounting, and the
// workload statistics repository: profile row counts must equal real
// operator output on both engines at every batch size, memory charges must
// be recomputable at accounting granularity (the hash join's table bytes
// in particular), the workload repository must fold literal-differing runs
// of the same query shape into one record, and a profiler-off run must be
// unaffected.

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/synthetic.h"
#include "cost/cost_model.h"
#include "exec/evaluator.h"
#include "exec/hash_table.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/workload.h"
#include "optimizer/optimizer.h"
#include "plan/explain.h"
#include "properties/property_functions.h"
#include "sql/parser.h"
#include "star/default_rules.h"
#include "storage/datagen.h"

namespace starburst {
namespace {

const PlanOp* FindNode(const PlanOp& root, const std::string& label) {
  if (root.Label() == label) return &root;
  for (const PlanPtr& in : root.inputs) {
    if (const PlanOp* hit = FindNode(*in, label)) return hit;
  }
  return nullptr;
}

void CollectRowsOut(const PlanOp& root, const ExecProfile& profile,
                    std::map<int64_t, int64_t>* out) {
  const OpProfile* p = profile.find(&root);
  if (p != nullptr) (*out)[root.id] = p->rows_out;
  for (const PlanPtr& in : root.inputs) CollectRowsOut(*in, profile, out);
}

class ProfileTest : public ::testing::Test {
 protected:
  explicit ProfileTest(double scale = 0.05)
      : catalog_(MakePaperCatalog()), db_(catalog_) {
    Status st = PopulatePaperDatabase(&db_, /*seed=*/7, scale);
    if (!st.ok()) ADD_FAILURE() << st.ToString();
  }

  Query Parse(const std::string& sql) {
    return ParseSql(catalog_, sql).ValueOrDie();
  }

  OptimizeResult Optimize(const Query& query) {
    // Plan nodes point into the optimizer's operator registry, so every
    // optimizer must outlive the plans it produced.
    DefaultRuleOptions rule_opts;
    rule_opts.merge_join = true;
    rule_opts.hash_join = true;
    optimizers_.push_back(
        std::make_unique<Optimizer>(DefaultRuleSet(rule_opts)));
    return optimizers_.back()->Optimize(query).ValueOrDie();
  }

  Result<ResultSet> RunProfiled(const Query& query, const PlanPtr& plan,
                                bool vectorized, int batch_size,
                                ExecProfile* sink) {
    ExecOptions options;
    options.vectorized = vectorized ? 1 : 0;
    options.batch_size = batch_size;
    options.profile_sink = sink;
    return ExecutePlan(db_, query, plan, options);
  }

  Catalog catalog_;
  Database db_;
  std::vector<std::unique_ptr<Optimizer>> optimizers_;
};

// ---------------------------------------------------------------------------
// Row-count exactness: the profiled root must report exactly the rows the
// query returned, on both engines, at batch sizes 1 / 1024 / 4096; and the
// vectorized per-node counts must be batch-size invariant.
// ---------------------------------------------------------------------------

TEST_F(ProfileTest, RootRowCountsExactOnBothEnginesAtEveryBatchSize) {
  const char* kSqls[] = {
      "SELECT EMP.NAME, EMP.SALARY FROM EMP WHERE EMP.SALARY >= 100000 "
      "ORDER BY EMP.SALARY",
      "SELECT EMP.NAME, EMP.ADDRESS FROM DEPT, EMP "
      "WHERE DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO",
  };
  for (const char* sql : kSqls) {
    Query query = Parse(sql);
    PlanPtr best = Optimize(query).best;
    size_t expected_rows = 0;
    bool first = true;
    std::map<int64_t, int64_t> vec_rows_out_at_1;
    for (bool vectorized : {false, true}) {
      for (int batch_size : {1, 1024, 4096}) {
        ExecProfile profile;
        auto rs = RunProfiled(query, best, vectorized, batch_size, &profile);
        ASSERT_TRUE(rs.ok()) << rs.status().ToString() << "\n" << sql;
        if (first) {
          expected_rows = rs.value().rows.size();
          first = false;
        }
        ASSERT_EQ(rs.value().rows.size(), expected_rows)
            << sql << " vectorized=" << vectorized
            << " batch_size=" << batch_size;
        const OpProfile* root = profile.find(best.get());
        ASSERT_NE(root, nullptr) << sql;
        // The root's profiled rows are the real result cardinality — not an
        // estimate, not a per-batch artifact.
        EXPECT_EQ(root->rows_out, static_cast<int64_t>(expected_rows))
            << sql << " vectorized=" << vectorized
            << " batch_size=" << batch_size;
        EXPECT_GE(root->opens, 1) << sql;
        EXPECT_EQ(root->opens, root->closes) << sql;
        EXPECT_GE(root->total_micros(), 0.0);
        if (vectorized) {
          // Batch size changes how rows are chunked, never how many flow
          // through each operator.
          std::map<int64_t, int64_t> rows_out;
          CollectRowsOut(*best, profile, &rows_out);
          if (batch_size == 1) {
            vec_rows_out_at_1 = rows_out;
          } else {
            EXPECT_EQ(rows_out, vec_rows_out_at_1)
                << sql << " batch_size=" << batch_size;
          }
        }
      }
    }
  }
}

TEST_F(ProfileTest, ProfilerOffLeavesResultsIdentical) {
  Query query = Parse(
      "SELECT EMP.NAME, EMP.ADDRESS FROM DEPT, EMP "
      "WHERE DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO");
  PlanPtr best = Optimize(query).best;
  for (bool vectorized : {false, true}) {
    ExecOptions off;
    off.vectorized = vectorized ? 1 : 0;
    off.profile = 0;
    auto plain = ExecutePlan(db_, query, best, off);
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();

    ExecProfile profile;
    ExecOptions on = off;
    on.profile_sink = &profile;
    auto profiled = ExecutePlan(db_, query, best, on);
    ASSERT_TRUE(profiled.ok()) << profiled.status().ToString();

    ASSERT_EQ(plain.value().rows.size(), profiled.value().rows.size());
    for (size_t i = 0; i < plain.value().rows.size(); ++i) {
      const Tuple& a = plain.value().rows[i];
      const Tuple& b = profiled.value().rows[i];
      ASSERT_EQ(a.size(), b.size());
      for (size_t j = 0; j < a.size(); ++j) {
        EXPECT_EQ(a[j].Compare(b[j]), 0)
            << "row " << i << " col " << j << " vectorized=" << vectorized;
      }
    }
    EXPECT_FALSE(profile.empty());
  }
}

// ---------------------------------------------------------------------------
// Memory accounting.
// ---------------------------------------------------------------------------

TEST(MemoryTrackerTest, PeakIsAHighWaterMark) {
  MemoryTracker mem;
  mem.Charge(100);
  mem.Charge(50);
  EXPECT_EQ(mem.current_bytes(), 150);
  EXPECT_EQ(mem.peak_bytes(), 150);
  mem.Release(120);
  EXPECT_EQ(mem.current_bytes(), 30);
  EXPECT_EQ(mem.peak_bytes(), 150);  // peak survives releases
  mem.Charge(10);
  EXPECT_EQ(mem.peak_bytes(), 150);
  mem.Release(40);  // exact release back to zero is not a clamp
  EXPECT_EQ(mem.current_bytes(), 0);
  EXPECT_EQ(mem.clamp_count(), 0);
  mem.Reset();
  EXPECT_EQ(mem.peak_bytes(), 0);
}

// An over-release is an accounting bug somewhere in the engine: in release
// builds it clamps to zero and bumps the clamp counter (published as the
// exec.tracker_clamps gauge); in debug builds it additionally fails an
// assertion so the offending call site aborts loudly under test.
TEST(MemoryTrackerTest, OverReleaseClampsAndCounts) {
  auto over_release = [] {
    MemoryTracker mem;
    mem.Charge(100);
    mem.Release(1000);
    // NDEBUG builds reach here: clamped to zero, clamp counted.
    if (mem.current_bytes() != 0 || mem.clamp_count() != 1) std::abort();
  };
#ifdef NDEBUG
  over_release();
#else
  EXPECT_DEATH(over_release(), "over-release");
#endif
}

TEST(JoinHashTableTest, ApproxBytesIsRecomputableFromContents) {
  JoinHashTable ht(/*key_width=*/1);
  std::vector<Datum> keys = {Datum(int64_t{3}), Datum(std::string("Haas")),
                             Datum(int64_t{3}), Datum(std::string("Greer"))};
  for (uint32_t row = 0; row < keys.size(); ++row) {
    uint64_t h = JoinHashTable::HashKey(&keys[row], 1);
    ASSERT_TRUE(ht.Insert(&keys[row], h, row).ok());
  }
  ASSERT_EQ(ht.num_groups(), 3u);  // the duplicate int folds into one group
  ASSERT_EQ(ht.num_rows(), 4u);
  // Recompute the documented accounting formula: per-group key Datum payload
  // + group hash/head/tail + per-entry row/next + slot array.
  int64_t expected =
      static_cast<int64_t>(ht.num_groups()) *
          static_cast<int64_t>(sizeof(Datum)) +
      static_cast<int64_t>(std::string("Haas").size()) +
      static_cast<int64_t>(std::string("Greer").size()) +
      static_cast<int64_t>(ht.num_groups()) *
          static_cast<int64_t>(sizeof(uint64_t) + 2 * sizeof(int32_t)) +
      static_cast<int64_t>(ht.num_rows()) *
          static_cast<int64_t>(sizeof(uint32_t) + sizeof(int32_t)) +
      static_cast<int64_t>(ht.num_slots()) *
          static_cast<int64_t>(sizeof(int32_t));
  EXPECT_EQ(ht.ApproxBytes(), expected);
}

TEST_F(ProfileTest, HashJoinChargesItsTableToThePeak) {
  // Build the JOIN(HA) plan by hand so the test does not depend on the
  // cost model ever preferring it: DEPT scan (MGR = 'Haas') hash-joined
  // with an EMP scan on the DNO equality.
  Query query = Parse(
      "SELECT EMP.NAME, EMP.ADDRESS FROM DEPT, EMP "
      "WHERE DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO");
  CostModel cost_model;
  OperatorRegistry registry;
  ASSERT_TRUE(RegisterBuiltinOperators(&registry).ok());
  PlanFactory factory(query, cost_model, registry);
  auto col = [&](const char* alias, const char* name) {
    return query.ResolveColumn(alias, name).ValueOrDie();
  };
  OpArgs dept_args;
  dept_args.Set(arg::kQuantifier, int64_t{0});
  dept_args.Set(arg::kCols, std::vector<ColumnRef>{col("DEPT", "DNO"),
                                                   col("DEPT", "MGR")});
  dept_args.Set(arg::kPreds, PredSet::Single(0));
  PlanPtr dept =
      factory.Make(op::kAccess, flavor::kHeap, {}, std::move(dept_args))
          .ValueOrDie();
  OpArgs emp_args;
  emp_args.Set(arg::kQuantifier, int64_t{1});
  emp_args.Set(arg::kCols,
               std::vector<ColumnRef>{col("EMP", "DNO"), col("EMP", "NAME"),
                                      col("EMP", "ADDRESS")});
  emp_args.Set(arg::kPreds, PredSet{});
  PlanPtr emp =
      factory.Make(op::kAccess, flavor::kHeap, {}, std::move(emp_args))
          .ValueOrDie();
  OpArgs join;
  join.Set(arg::kJoinPreds, PredSet::Single(1));
  join.Set(arg::kResidualPreds, PredSet{});
  PlanPtr ha_plan =
      factory.Make(op::kJoin, flavor::kHA, {dept, emp}, std::move(join))
          .ValueOrDie();
  for (bool vectorized : {false, true}) {
    ExecProfile profile;
    auto rs = RunProfiled(query, ha_plan, vectorized, 1024, &profile);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    ASSERT_GT(rs.value().rows.size(), 0u);
    const PlanOp* ha = ha_plan.get();
    ASSERT_EQ(ha->Label(), "JOIN(HA)");
    const OpProfile* p = profile.find(ha);
    ASSERT_NE(p, nullptr) << "vectorized=" << vectorized;
    EXPECT_GT(p->hash_build_rows, 0) << "vectorized=" << vectorized;
    EXPECT_GE(p->hash_build_rows, p->hash_groups);
    EXPECT_GT(p->hash_groups, 0);
    EXPECT_GT(p->hash_bytes, 0);
    EXPECT_GT(p->hash_probes, 0);
    // The table's bytes were charged through this node, so its high water
    // and the query-wide peak both cover them (the peak may be higher —
    // build-side materialization is charged too).
    EXPECT_GE(p->peak_bytes, p->hash_bytes);
    EXPECT_GE(profile.memory().peak_bytes(), p->hash_bytes);
    EXPECT_GE(profile.memory().peak_bytes(), p->peak_bytes);
  }
}

TEST_F(ProfileTest, SortChargesItsBufferAndRecordsRows) {
  Query query = Parse(
      "SELECT EMP.NAME, EMP.SALARY FROM EMP WHERE EMP.SALARY >= 100000 "
      "ORDER BY EMP.SALARY");
  PlanPtr best = Optimize(query).best;
  const PlanOp* sort = FindNode(*best, "SORT");
  if (sort == nullptr) GTEST_SKIP() << "plan satisfied the order for free";
  ExecProfile profile;
  auto rs = RunProfiled(query, best, /*vectorized=*/true, 1024, &profile);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  const OpProfile* p = profile.find(sort);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->sort_rows, static_cast<int64_t>(rs.value().rows.size()));
  EXPECT_GT(p->sort_bytes, 0);
  EXPECT_GE(p->peak_bytes, p->sort_bytes);
  EXPECT_GE(profile.memory().peak_bytes(), p->sort_bytes);
}

// ---------------------------------------------------------------------------
// Exchange parallelism: the profile is engine-invariant across exec-thread
// counts — per-node row counts, batch counts, the root's exact cardinality,
// and the hash join's data-dependent detail (build rows, groups, probes,
// chain steps) never change; only layout-dependent detail (bucket count,
// table bytes) may. Memory accounting must still balance to zero.
// ---------------------------------------------------------------------------

class ParallelProfileTest : public ProfileTest {
 protected:
  // scale 0.5 (EMP 10000 rows) so morsel pools engage; the base fixture's
  // 0.05-scale rows sit below kExchangeMinRows and would run inline.
  ParallelProfileTest() : ProfileTest(/*scale=*/0.5) {}

  Result<ResultSet> RunThreaded(const Query& query, const PlanPtr& plan,
                                int exec_threads, ExecProfile* sink,
                                int64_t exec_mem_limit = 0) {
    ExecOptions options;
    options.vectorized = 1;
    options.batch_size = 1024;
    options.exec_threads = exec_threads;
    options.profile_sink = sink;
    options.exec_mem_limit = exec_mem_limit;
    return ExecutePlan(db_, query, plan, options);
  }
};

TEST_F(ParallelProfileTest, RowCountsAndMemoryBalanceAcrossThreadSweep) {
  const char* kSqls[] = {
      "SELECT EMP.NAME, EMP.SALARY FROM EMP WHERE EMP.SALARY >= 100000 "
      "ORDER BY EMP.SALARY",
      "SELECT EMP.NAME FROM DEPT, EMP "
      "WHERE DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO",
  };
  for (const char* sql : kSqls) {
    Query query = Parse(sql);
    PlanPtr best = Optimize(query).best;
    std::map<int64_t, int64_t> rows_at_1;
    size_t result_rows = 0;
    for (int threads : {1, 2, 8}) {
      ExecProfile profile;
      auto rs = RunThreaded(query, best, threads, &profile);
      ASSERT_TRUE(rs.ok()) << rs.status().ToString() << " threads=" << threads;
      const OpProfile* root = profile.find(best.get());
      ASSERT_NE(root, nullptr);
      EXPECT_EQ(root->rows_out, static_cast<int64_t>(rs.value().rows.size()))
          << sql << " threads=" << threads;
      // Every charge was released: the tracker balances to zero with the
      // peak as the only residue.
      EXPECT_EQ(profile.memory().current_bytes(), 0)
          << sql << " threads=" << threads;
      for (const auto& [node, p] : profile.ops()) {
        EXPECT_GE(profile.memory().peak_bytes(), p.peak_bytes)
            << sql << " threads=" << threads;
      }
      std::map<int64_t, int64_t> rows_out;
      CollectRowsOut(*best, profile, &rows_out);
      if (threads == 1) {
        rows_at_1 = rows_out;
        result_rows = rs.value().rows.size();
      } else {
        EXPECT_EQ(rows_out, rows_at_1) << sql << " threads=" << threads;
        EXPECT_EQ(rs.value().rows.size(), result_rows)
            << sql << " threads=" << threads;
      }
    }
  }
}

TEST_F(ParallelProfileTest, HashJoinDetailInvariantAcrossThreads) {
  // Hand-built JOIN(HA) with the big EMP side on the build: the partitioned
  // parallel build must report the same data-dependent counters as the
  // streaming build. Bucket count and table bytes are partition-layout
  // detail and are deliberately NOT asserted.
  Query query = Parse(
      "SELECT EMP.NAME, EMP.ADDRESS FROM DEPT, EMP "
      "WHERE DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO");
  CostModel cost_model;
  OperatorRegistry registry;
  ASSERT_TRUE(RegisterBuiltinOperators(&registry).ok());
  PlanFactory factory(query, cost_model, registry);
  auto col = [&](const char* alias, const char* name) {
    return query.ResolveColumn(alias, name).ValueOrDie();
  };
  OpArgs dept_args;
  dept_args.Set(arg::kQuantifier, int64_t{0});
  dept_args.Set(arg::kCols, std::vector<ColumnRef>{col("DEPT", "DNO"),
                                                   col("DEPT", "MGR")});
  dept_args.Set(arg::kPreds, PredSet::Single(0));
  PlanPtr dept =
      factory.Make(op::kAccess, flavor::kHeap, {}, std::move(dept_args))
          .ValueOrDie();
  OpArgs emp_args;
  emp_args.Set(arg::kQuantifier, int64_t{1});
  emp_args.Set(arg::kCols,
               std::vector<ColumnRef>{col("EMP", "DNO"), col("EMP", "NAME"),
                                      col("EMP", "ADDRESS")});
  emp_args.Set(arg::kPreds, PredSet{});
  PlanPtr emp =
      factory.Make(op::kAccess, flavor::kHeap, {}, std::move(emp_args))
          .ValueOrDie();
  OpArgs join;
  join.Set(arg::kJoinPreds, PredSet::Single(1));
  join.Set(arg::kResidualPreds, PredSet{});
  PlanPtr ha_plan =
      factory.Make(op::kJoin, flavor::kHA, {dept, emp}, std::move(join))
          .ValueOrDie();

  int64_t build_rows = -1, groups = -1, probes = -1, chain_steps = -1;
  for (int threads : {1, 2, 8}) {
    ExecProfile profile;
    // exec_mem_limit = -1 pins the in-memory partitioned build: this test
    // asserts exchange fan-out, which a spilling (Grace) build replaces
    // with coordinator-only partition files.
    auto rs = RunThreaded(query, ha_plan, threads, &profile,
                          /*exec_mem_limit=*/-1);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString() << " threads=" << threads;
    const OpProfile* p = profile.find(ha_plan.get());
    ASSERT_NE(p, nullptr);
    EXPECT_GT(p->hash_build_rows, 0);
    EXPECT_GT(p->hash_bytes, 0);
    EXPECT_GE(p->peak_bytes, p->hash_bytes);
    if (threads == 1) {
      build_rows = p->hash_build_rows;
      groups = p->hash_groups;
      probes = p->hash_probes;
      chain_steps = p->hash_chain_steps;
    } else {
      EXPECT_EQ(p->hash_build_rows, build_rows) << "threads=" << threads;
      EXPECT_EQ(p->hash_groups, groups) << "threads=" << threads;
      EXPECT_EQ(p->hash_probes, probes) << "threads=" << threads;
      EXPECT_EQ(p->hash_chain_steps, chain_steps) << "threads=" << threads;
      // The build side (10000 EMP rows) is big enough that the exchange
      // actually fanned out.
      EXPECT_GT(p->exchange_workers, 1) << "threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Metrics, JSON export, and EXPLAIN rendering.
// ---------------------------------------------------------------------------

TEST_F(ProfileTest, ExecGaugesAndAnalyzedOverloadSurfaceTheProfile) {
  Query query = Parse("SELECT EMP.NAME FROM EMP WHERE EMP.SALARY >= 100000");
  PlanPtr best = Optimize(query).best;

  MetricsRegistry metrics;
  ExecProfile profile;
  PlanRunStats stats;
  ExecOptions options;
  options.metrics = &metrics;
  options.profile_sink = &profile;
  auto rs = ExecutePlanAnalyzed(db_, query, best, &stats, options);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();

  // Both sinks filled from the one run, and they agree on the root.
  ASSERT_FALSE(profile.empty());
  ASSERT_GE(stats.size(), 1u);
  const OpProfile* root = profile.find(best.get());
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->rows_out, stats.at(best.get()).rows);

  // exec.* gauges land in the registry (and survive Prometheus mangling).
  EXPECT_GE(metrics.gauge("exec.peak_bytes"), 0.0);
  std::string prom = metrics.TakeSnapshot().ToPrometheus();
  EXPECT_NE(prom.find("exec_peak_bytes"), std::string::npos) << prom;

  // The JSON export is labeled and ordered.
  std::string json = profile.ToJson();
  EXPECT_NE(json.find("\"peak_bytes\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ops\":["), std::string::npos);
  EXPECT_NE(json.find("\"label\":\""), std::string::npos);
  EXPECT_NE(json.find("\"rows_out\":"), std::string::npos);

  // EXPLAIN with a profile renders the tree annotations and the footer.
  ExplainOptions opts;
  opts.profile = &profile;
  std::string text = ExplainPlan(*best, query, opts);
  EXPECT_NE(text.find("time="), std::string::npos) << text;
  EXPECT_NE(text.find("% of total"), std::string::npos);
  EXPECT_NE(text.find("rows=" + std::to_string(rs.value().rows.size())),
            std::string::npos);
  EXPECT_NE(text.find("peak memory:"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Workload statistics repository.
// ---------------------------------------------------------------------------

TEST_F(ProfileTest, WorkloadFoldsLiteralDifferingRunsIntoOneRecord) {
  Query haas = Parse(
      "SELECT EMP.NAME FROM DEPT, EMP "
      "WHERE DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO");
  Query greer = Parse(
      "SELECT EMP.NAME FROM DEPT, EMP "
      "WHERE DEPT.MGR = 'Greer' AND DEPT.DNO = EMP.DNO");
  EXPECT_EQ(WorkloadRepository::QueryDigest(haas),
            WorkloadRepository::QueryDigest(greer));
  EXPECT_EQ(WorkloadRepository::NormalizedQuery(haas),
            WorkloadRepository::NormalizedQuery(greer));

  WorkloadRepository repo;
  for (const Query* q : {&haas, &greer}) {
    PlanPtr best = Optimize(*q).best;
    ExecOptions options;
    options.workload = &repo;  // implies profiling with a local sink
    auto rs = ExecutePlan(db_, *q, best, options);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  }
  ASSERT_EQ(repo.size(), 1u);
  std::vector<WorkloadQueryRecord> records = repo.Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].runs, 2);
  EXPECT_GE(records[0].max_q_error, 1.0);

  // The per-(table, shape) aggregates use the same normalized keys for both
  // runs: every key observed twice, literals erased.
  std::vector<TableShapeStats> stats = repo.TableStats();
  ASSERT_FALSE(stats.empty());
  for (const TableShapeStats& s : stats) {
    EXPECT_EQ(s.observations, 2) << s.table << " | " << s.shape;
    EXPECT_EQ(s.shape.find("Haas"), std::string::npos) << s.shape;
    EXPECT_EQ(s.shape.find("Greer"), std::string::npos) << s.shape;
  }
}

TEST_F(ProfileTest, WorkloadRepeatedRunsAggregateIdenticalKeys) {
  Query query = Parse("SELECT EMP.NAME FROM EMP WHERE EMP.SALARY >= 100000");
  PlanPtr best = Optimize(query).best;
  auto keys_of = [&](int runs) {
    WorkloadRepository repo;
    for (int i = 0; i < runs; ++i) {
      ExecOptions options;
      options.workload = &repo;
      auto rs = ExecutePlan(db_, query, best, options);
      EXPECT_TRUE(rs.ok()) << rs.status().ToString();
    }
    std::vector<std::pair<std::string, std::string>> keys;
    for (const TableShapeStats& s : repo.TableStats()) {
      keys.emplace_back(s.table, s.shape);
    }
    return keys;
  };
  auto once = keys_of(1);
  auto thrice = keys_of(3);
  ASSERT_FALSE(once.empty());
  // Re-running the same query never mints new keys.
  EXPECT_EQ(once, thrice);
}

TEST_F(ProfileTest, WorkloadRingEvictsQueriesButKeepsShapeFeedback) {
  const char* kSqls[] = {
      "SELECT EMP.NAME FROM EMP WHERE EMP.SALARY >= 100000",
      "SELECT DEPT.DNAME FROM DEPT WHERE DEPT.MGR = 'Haas'",
      "SELECT EMP.NAME FROM DEPT, EMP WHERE DEPT.DNO = EMP.DNO",
  };
  WorkloadRepository repo(/*capacity=*/2);
  for (const char* sql : kSqls) {
    Query query = Parse(sql);
    PlanPtr best = Optimize(query).best;
    ExecOptions options;
    options.workload = &repo;
    auto rs = ExecutePlan(db_, query, best, options);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  }
  // The ring holds the two newest queries; the first one's record is gone
  // but its (table, shape) feedback persists.
  EXPECT_EQ(repo.size(), 2u);
  bool saw_emp_salary_shape = false;
  for (const TableShapeStats& s : repo.TableStats()) {
    if (s.table == "EMP" && s.shape.find("SALARY") != std::string::npos) {
      saw_emp_salary_shape = true;
    }
  }
  EXPECT_TRUE(saw_emp_salary_shape);
  std::string json = repo.ToJson();
  EXPECT_NE(json.find("\"queries\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"table_stats\":["), std::string::npos);
}

}  // namespace
}  // namespace starburst
