// Unit tests for the exchange LOLEPOP's building blocks: morsel math and
// worker gating, RunMorsels coverage and lowest-index error selection, the
// chunked parallel stable sort (bit-identical to one std::stable_sort), the
// partitioned join build (same groups/rows/chains as one big table), the
// JoinHashTable int32 overflow guard, and the EXPLAIN / JSON surfacing of
// exchange workers on a profiled parallel run.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include "catalog/synthetic.h"
#include "exec/evaluator.h"
#include "exec/exchange.h"
#include "exec/hash_table.h"
#include "obs/profiler.h"
#include "optimizer/optimizer.h"
#include "plan/explain.h"
#include "sql/parser.h"
#include "star/default_rules.h"
#include "storage/datagen.h"

namespace starburst {
namespace {

// ---------------------------------------------------------------------------
// Morsel decomposition and worker gating.
// ---------------------------------------------------------------------------

TEST(ExchangeTest, MorselCountRoundsUp) {
  EXPECT_EQ(MorselCount(0), 0u);
  EXPECT_EQ(MorselCount(1), 1u);
  EXPECT_EQ(MorselCount(kMorselRows), 1u);
  EXPECT_EQ(MorselCount(kMorselRows + 1), 2u);
  EXPECT_EQ(MorselCount(10 * kMorselRows), 10u);
}

TEST(ExchangeTest, WorkerGatingDisablesSmallOrSequentialSources) {
  // Sequential configuration: never more than one worker.
  EXPECT_EQ(ExchangeWorkersFor(1, 100000, MorselCount(100000)), 1);
  // Small source: below kExchangeMinRows the pool costs more than it saves.
  EXPECT_EQ(ExchangeWorkersFor(8, kExchangeMinRows - 1,
                               MorselCount(kExchangeMinRows - 1)),
            1);
  // One morsel cannot be split.
  EXPECT_EQ(ExchangeWorkersFor(8, 5000, 1), 1);
  // Otherwise: min(threads, morsels).
  EXPECT_EQ(ExchangeWorkersFor(8, kExchangeMinRows, 2), 2);
  EXPECT_EQ(ExchangeWorkersFor(2, 100000, MorselCount(100000)), 2);
  EXPECT_EQ(ExchangeWorkersFor(64, 5000, MorselCount(5000)), 5);
}

// ---------------------------------------------------------------------------
// RunMorsels: every morsel runs exactly once at any worker count, and the
// reported error is the lowest failing morsel index — the error a
// sequential scan would hit first in row order.
// ---------------------------------------------------------------------------

TEST(ExchangeTest, RunMorselsCoversEveryMorselExactlyOnce) {
  for (int workers : {1, 2, 3, 8}) {
    const size_t kMorsels = 37;
    std::vector<std::atomic<int>> hits(kMorsels);
    for (auto& h : hits) h.store(0);
    Status st = RunMorsels(workers, kMorsels, [&](size_t m) {
      hits[m].fetch_add(1);
      return Status::OK();
    });
    ASSERT_TRUE(st.ok()) << st.ToString();
    for (size_t m = 0; m < kMorsels; ++m) {
      EXPECT_EQ(hits[m].load(), 1) << "morsel " << m << " workers " << workers;
    }
  }
}

TEST(ExchangeTest, RunMorselsReturnsLowestIndexError) {
  for (int workers : {1, 2, 8}) {
    std::vector<std::atomic<int>> hits(24);
    for (auto& h : hits) h.store(0);
    Status st = RunMorsels(workers, 24, [&](size_t m) {
      hits[m].fetch_add(1);
      if (m == 5 || m == 20) {
        return Status::Internal("morsel " + std::to_string(m) + " failed");
      }
      return Status::OK();
    });
    ASSERT_FALSE(st.ok());
    // Deterministic selection: morsel 5's error wins at every worker count,
    // even when a worker hits morsel 20's failure first in wall-clock time.
    EXPECT_NE(st.ToString().find("morsel 5 failed"), std::string::npos)
        << st.ToString() << " workers=" << workers;
    // No early cancellation: every morsel still ran.
    for (size_t m = 0; m < 24; ++m) {
      EXPECT_EQ(hits[m].load(), 1) << "morsel " << m;
    }
  }
}

// ---------------------------------------------------------------------------
// Parallel stable sort: bit-identical to one std::stable_sort, duplicates
// keeping their input order, at every worker count.
// ---------------------------------------------------------------------------

TEST(ExchangeTest, SortRowsBySlotsMatchesStableSortWithDuplicates) {
  const size_t kRows = 5000;  // above kExchangeMinRows so chunking engages
  std::vector<Tuple> input;
  input.reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    // Heavily duplicated key; the second column records insertion order so
    // any stability violation shows up as a value mismatch.
    input.push_back({Datum(static_cast<int64_t>(i * 2654435761u % 17)),
                     Datum(static_cast<int64_t>(i))});
  }
  std::vector<int> slots = {0};
  std::vector<Tuple> want = input;
  std::stable_sort(want.begin(), want.end(),
                   [](const Tuple& a, const Tuple& b) {
                     return a[0].Compare(b[0]) < 0;
                   });
  for (int workers : {1, 2, 3, 8}) {
    std::vector<Tuple> rows = input;
    int used = SortRowsBySlots(&rows, slots, workers);
    EXPECT_GE(used, 1);
    EXPECT_LE(used, workers);
    ASSERT_EQ(rows.size(), want.size()) << "workers=" << workers;
    for (size_t i = 0; i < rows.size(); ++i) {
      ASSERT_EQ(rows[i][0].Compare(want[i][0]), 0) << "row " << i;
      ASSERT_EQ(rows[i][1].Compare(want[i][1]), 0)
          << "stability broken at row " << i << " workers=" << workers;
    }
  }
  // Small inputs fall back to the single sort (no chunk overhead).
  std::vector<Tuple> small(input.begin(), input.begin() + 100);
  EXPECT_EQ(SortRowsBySlots(&small, slots, 8), 1);
}

// ---------------------------------------------------------------------------
// JoinHashTable overflow guard: the int32 index caps surface as
// kResourceExhausted instead of wrapping (NextPow2 on a huge reserve used to
// overflow to 0 and index with garbage).
// ---------------------------------------------------------------------------

TEST(ExchangeTest, JoinHashTableReserveReportsInt32CapAsResourceExhausted) {
  JoinHashTable ht(/*key_width=*/1);
  Status st = ht.Reserve(JoinHashTable::kMaxGroups + 1);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
  // A sane reserve still works and the table stays usable.
  ASSERT_TRUE(ht.Reserve(64).ok());
  Datum key(int64_t{7});
  uint64_t h = JoinHashTable::HashKey(&key, 1);
  ASSERT_TRUE(ht.Insert(&key, h, 0).ok());
  EXPECT_EQ(ht.num_rows(), 1u);
}

// ---------------------------------------------------------------------------
// Partitioned build: same rows, groups, and per-key chain order as one big
// JoinHashTable, at every thread count.
// ---------------------------------------------------------------------------

TEST(ExchangeTest, PartitionedJoinTableMatchesSingleTable) {
  const size_t kRows = 5000;
  std::vector<Tuple> rows;
  rows.reserve(kRows);
  for (size_t i = 0; i < kRows; ++i) {
    if (i % 97 == 13) {
      rows.push_back({Datum::NullValue()});  // NULL keys never join
    } else {
      rows.push_back({Datum(static_cast<int64_t>(i % 257))});
    }
  }
  // Key program: bare slot-0 load compiled against a one-column layout.
  Schema schema = {ColumnRef{0, 0}};
  CompileEnv env;
  env.schema = &schema;
  std::vector<ExprProgram> key_progs;
  key_progs.push_back(ExprProgram::Compile(*Expr::Column(ColumnRef{0, 0}), env));

  // Sequential oracle.
  JoinHashTable single(/*key_width=*/1);
  for (size_t i = 0; i < kRows; ++i) {
    if (rows[i][0].is_null()) continue;
    uint64_t h = JoinHashTable::HashKey(&rows[i][0], 1);
    ASSERT_TRUE(single.Insert(&rows[i][0], h, static_cast<uint32_t>(i)).ok());
  }

  for (int threads : {1, 2, 8}) {
    PartitionedJoinTable pt(/*key_width=*/1);
    ASSERT_TRUE(
        pt.Build(rows, key_progs, /*frames=*/nullptr, threads).ok());
    EXPECT_EQ(pt.num_rows(), single.num_rows()) << "threads=" << threads;
    EXPECT_EQ(pt.num_groups(), single.num_groups()) << "threads=" << threads;
    // Every key's chain replays the sequential insertion order.
    for (int64_t k = 0; k < 257; ++k) {
      Datum key(k);
      uint64_t h = JoinHashTable::HashKey(&key, 1);
      std::vector<uint32_t> want, got;
      int32_t g = single.FindGroup(&key, h);
      if (g >= 0) {
        for (int32_t e = single.GroupHead(g); e >= 0; e = single.NextEntry(e)) {
          want.push_back(single.EntryRow(e));
        }
      }
      const JoinHashTable& part = pt.partition(h);
      int32_t pg = part.FindGroup(&key, h);
      if (pg >= 0) {
        for (int32_t e = part.GroupHead(pg); e >= 0; e = part.NextEntry(e)) {
          got.push_back(part.EntryRow(e));
        }
      }
      ASSERT_EQ(got, want) << "key " << k << " threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Observability: a profiled parallel run annotates the scanned node with
// XCHG[workers=N] in EXPLAIN and xchg_workers in the JSON export.
// ---------------------------------------------------------------------------

TEST(ExchangeTest, ExplainAndJsonSurfaceExchangeWorkers) {
  Catalog catalog = MakePaperCatalog();
  Database db(catalog);
  // scale 0.5 -> EMP has 10000 rows, well above kExchangeMinRows.
  ASSERT_TRUE(PopulatePaperDatabase(&db, /*seed=*/7, /*scale=*/0.5).ok());
  auto query_r = ParseSql(
      catalog, "SELECT EMP.NAME, EMP.SALARY FROM EMP WHERE EMP.SALARY >= 0");
  ASSERT_TRUE(query_r.ok()) << query_r.status().ToString();
  const Query& query = query_r.value();
  Optimizer opt(DefaultRuleSet(DefaultRuleOptions{}));
  PlanPtr best = opt.Optimize(query).ValueOrDie().best;

  ExecProfile profile;
  ExecOptions options;
  options.vectorized = 1;
  options.exec_threads = 8;
  options.profile_sink = &profile;
  auto rs = ExecutePlan(db, query, best, options);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_GT(rs.value().rows.size(), static_cast<size_t>(kExchangeMinRows));

  bool saw_workers = false;
  for (const auto& [node, p] : profile.ops()) {
    if (p.exchange_workers > 1) saw_workers = true;
  }
  ASSERT_TRUE(saw_workers) << "no operator recorded exchange workers";

  ExplainOptions eopts;
  eopts.profile = &profile;
  std::string text = ExplainPlan(*best, query, eopts);
  EXPECT_NE(text.find("XCHG[workers="), std::string::npos) << text;
  std::string json = profile.ToJson();
  EXPECT_NE(json.find("\"xchg_workers\":"), std::string::npos) << json;
}

}  // namespace
}  // namespace starburst
