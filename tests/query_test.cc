// Unit tests for the query model: expressions, predicate classification
// (the paper's JP/SP/HP/IP/XP classes, §4.4-4.5), and query analysis.

#include <gtest/gtest.h>

#include "catalog/synthetic.h"
#include "query/query.h"
#include "sql/parser.h"

namespace starburst {
namespace {

class ClassificationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    catalog_ = MakePaperCatalog();
    query_ = std::make_unique<Query>(&catalog_);
    dept_ = query_->AddQuantifier("DEPT").ValueOrDie();
    emp_ = query_->AddQuantifier("EMP").ValueOrDie();
    t1_ = QuantifierSet::Single(dept_);
    t2_ = QuantifierSet::Single(emp_);
  }

  ColumnRef Col(int q, const char* name) {
    const std::string& alias = query_->quantifier(q).alias;
    return query_->ResolveColumn(alias, name).ValueOrDie();
  }

  const Predicate& AddPred(ExprPtr lhs, CompareOp op, ExprPtr rhs) {
    int id = query_->AddPredicate(std::move(lhs), op, std::move(rhs))
                 .ValueOrDie();
    return query_->predicate(id);
  }

  Catalog catalog_;
  std::unique_ptr<Query> query_;
  int dept_, emp_;
  QuantifierSet t1_, t2_;
};

TEST_F(ClassificationTest, SimpleEqualityIsEverything) {
  // DEPT.DNO = EMP.DNO: join, sortable, hashable, indexable both ways.
  const Predicate& p =
      AddPred(Expr::Column(Col(dept_, "DNO")), CompareOp::kEq,
              Expr::Column(Col(emp_, "DNO")));
  EXPECT_TRUE(IsJoinPredicate(p, t1_, t2_));
  EXPECT_TRUE(IsSortable(p, t1_, t2_));
  EXPECT_TRUE(IsHashable(p, t1_, t2_));
  EXPECT_TRUE(IsIndexable(p, t1_, t2_));
  EXPECT_TRUE(IsIndexable(p, t2_, t1_));
  EXPECT_FALSE(IsInnerOnly(p, t2_));
}

TEST_F(ClassificationTest, ExpressionJoinIsHashableNotSortable) {
  // DEPT.DNO + 1 = EMP.DNO: hashable (expr = expr across sides) and
  // indexable on EMP, but not sortable (not bare col op col).
  const Predicate& p = AddPred(
      Expr::Binary(ExprKind::kAdd, Expr::Column(Col(dept_, "DNO")),
                   Expr::Literal(Datum(int64_t{1}))),
      CompareOp::kEq, Expr::Column(Col(emp_, "DNO")));
  EXPECT_TRUE(IsJoinPredicate(p, t1_, t2_));
  EXPECT_FALSE(IsSortable(p, t1_, t2_));
  EXPECT_TRUE(IsHashable(p, t1_, t2_));
  EXPECT_TRUE(IsIndexable(p, t1_, t2_));   // EMP.DNO is the bare inner column
  EXPECT_FALSE(IsIndexable(p, t2_, t1_));  // DEPT side is an expression
}

TEST_F(ClassificationTest, InequalityJoinIsSortableNotHashable) {
  // DEPT.BUDGET < EMP.SALARY: sortable (col op col) per §4.5.1's remark
  // that SP contains inequalities HP lacks; not hashable.
  const Predicate& p =
      AddPred(Expr::Column(Col(dept_, "BUDGET")), CompareOp::kLt,
              Expr::Column(Col(emp_, "SALARY")));
  EXPECT_TRUE(IsJoinPredicate(p, t1_, t2_));
  EXPECT_TRUE(IsSortable(p, t1_, t2_));
  EXPECT_FALSE(IsHashable(p, t1_, t2_));
  EXPECT_TRUE(IsIndexable(p, t1_, t2_));
}

TEST_F(ClassificationTest, SingleTablePredicateIsInnerOnly) {
  const Predicate& p =
      AddPred(Expr::Column(Col(emp_, "SALARY")), CompareOp::kGt,
              Expr::Literal(Datum(int64_t{1000})));
  EXPECT_FALSE(IsJoinPredicate(p, t1_, t2_));
  EXPECT_TRUE(IsInnerOnly(p, t2_));
  EXPECT_FALSE(IsInnerOnly(p, t1_));
  EXPECT_TRUE(IsEligible(p, t2_));
  EXPECT_FALSE(IsEligible(p, t1_));
}

TEST_F(ClassificationTest, SortAndIndexColumnExtraction) {
  const Predicate& p =
      AddPred(Expr::Column(Col(dept_, "DNO")), CompareOp::kEq,
              Expr::Column(Col(emp_, "DNO")));
  EXPECT_EQ(SortColumnFor(p, t1_), Col(dept_, "DNO"));
  EXPECT_EQ(SortColumnFor(p, t2_), Col(emp_, "DNO"));
  EXPECT_EQ(IndexColumnFor(p, t2_), Col(emp_, "DNO"));
  EXPECT_EQ(IndexColumnFor(p, t1_), Col(dept_, "DNO"));
}

TEST_F(ClassificationTest, EvalCompareSemantics) {
  EXPECT_TRUE(EvalCompare(CompareOp::kEq, Datum(int64_t{2}), Datum(2.0)));
  EXPECT_TRUE(EvalCompare(CompareOp::kLe, Datum(int64_t{2}), Datum(int64_t{2})));
  EXPECT_TRUE(EvalCompare(CompareOp::kNe, Datum(int64_t{1}), Datum(int64_t{2})));
  // SQL three-valued logic collapsed: NULL compares false under every op.
  for (CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                       CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    EXPECT_FALSE(EvalCompare(op, Datum::NullValue(), Datum(int64_t{1})));
    EXPECT_FALSE(EvalCompare(op, Datum(int64_t{1}), Datum::NullValue()));
  }
}

TEST(ExprTest, ColumnsCollection) {
  ExprPtr e = Expr::Binary(
      ExprKind::kMul, Expr::Column(ColumnRef{0, 1}),
      Expr::Binary(ExprKind::kAdd, Expr::Column(ColumnRef{1, 0}),
                   Expr::Literal(Datum(int64_t{3}))));
  ColumnSet cols = e->Columns();
  EXPECT_EQ(cols.size(), 2u);
  EXPECT_TRUE(cols.count(ColumnRef{0, 1}));
  EXPECT_TRUE(cols.count(ColumnRef{1, 0}));
  EXPECT_FALSE(e->IsBareColumn());
  EXPECT_TRUE(Expr::Column(ColumnRef{0, 0})->IsBareColumn());
}

TEST(ExprTest, ArithmeticEvaluation) {
  EXPECT_EQ(EvalBinary(ExprKind::kAdd, Datum(int64_t{2}), Datum(int64_t{3}))
                .AsInt(),
            5);
  EXPECT_EQ(EvalBinary(ExprKind::kMul, Datum(int64_t{4}), Datum(int64_t{5}))
                .AsInt(),
            20);
  EXPECT_DOUBLE_EQ(
      EvalBinary(ExprKind::kDiv, Datum(7.0), Datum(int64_t{2})).AsDouble(),
      3.5);
  // Integer division truncates; division by zero is NULL; NULL propagates.
  EXPECT_EQ(EvalBinary(ExprKind::kDiv, Datum(int64_t{7}), Datum(int64_t{2}))
                .AsInt(),
            3);
  EXPECT_TRUE(EvalBinary(ExprKind::kDiv, Datum(int64_t{1}), Datum(int64_t{0}))
                  .is_null());
  EXPECT_TRUE(
      EvalBinary(ExprKind::kAdd, Datum::NullValue(), Datum(int64_t{1}))
          .is_null());
}

TEST(QueryTest, ResolutionAndNaming) {
  Catalog cat = MakePaperCatalog();
  Query q(&cat);
  ASSERT_TRUE(q.AddQuantifier("EMP", "e").ok());
  ASSERT_TRUE(q.AddQuantifier("EMP", "e2").ok());  // self join
  EXPECT_FALSE(q.AddQuantifier("EMP", "e").ok());  // duplicate alias
  EXPECT_FALSE(q.AddQuantifier("NOPE").ok());

  auto ref = q.ResolveColumn("e2", "NAME");
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref.value().quantifier, 1);
  EXPECT_EQ(q.ColumnName(ref.value()), "e2.NAME");
  // Bare NAME is ambiguous with two EMP quantifiers.
  EXPECT_FALSE(q.ResolveBareColumn("NAME").ok());
  EXPECT_FALSE(q.ResolveColumn("e", "NOPE").ok());
}

TEST(QueryTest, ColumnsNeededCoversSelectOrderAndPredicates) {
  Catalog cat = MakePaperCatalog();
  Query q = ParseSql(cat,
                     "SELECT EMP.NAME FROM EMP WHERE EMP.SALARY > 10 "
                     "ORDER BY EMP.ENO")
                .ValueOrDie();
  ColumnSet needed = q.ColumnsNeeded(0);
  auto has = [&](const char* name) {
    return needed.count(q.ResolveColumn("EMP", name).ValueOrDie()) > 0;
  };
  EXPECT_TRUE(has("NAME"));
  EXPECT_TRUE(has("SALARY"));
  EXPECT_TRUE(has("ENO"));
  EXPECT_FALSE(has("ADDRESS"));
}

TEST(QueryTest, EligiblePredicates) {
  Catalog cat = MakePaperCatalog();
  Query q = ParseSql(cat,
                     "SELECT EMP.NAME FROM DEPT, EMP WHERE "
                     "DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO AND "
                     "EMP.SALARY > 5")
                .ValueOrDie();
  PredSet all = q.AllPredicates();
  EXPECT_EQ(all.size(), 3);
  PredSet dept_only = q.EligiblePredicates(QuantifierSet::Single(0), all);
  EXPECT_EQ(dept_only.size(), 1);  // MGR = 'Haas'
  PredSet emp_only = q.EligiblePredicates(QuantifierSet::Single(1), all);
  EXPECT_EQ(emp_only.size(), 1);  // SALARY > 5
  EXPECT_EQ(q.EligiblePredicates(q.AllQuantifiers(), all), all);
}

TEST(QueryTest, ToStringRoundTripFlavor) {
  Catalog cat = MakePaperCatalog();
  Query q = ParseSql(cat,
                     "SELECT EMP.NAME FROM DEPT, EMP WHERE "
                     "DEPT.DNO = EMP.DNO ORDER BY EMP.NAME")
                .ValueOrDie();
  std::string s = q.ToString();
  EXPECT_NE(s.find("SELECT EMP.NAME"), std::string::npos);
  EXPECT_NE(s.find("DEPT.DNO = EMP.DNO"), std::string::npos);
  EXPECT_NE(s.find("ORDER BY EMP.NAME"), std::string::npos);
}

}  // namespace
}  // namespace starburst
