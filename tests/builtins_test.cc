// Direct unit tests for the rule-function library (star/builtins.h): the
// vocabulary STAR conditions and argument expressions are written in.

#include <gtest/gtest.h>

#include "catalog/synthetic.h"
#include "sql/parser.h"
#include "star/builtins.h"

namespace starburst {
namespace {

class BuiltinsTest : public ::testing::Test {
 protected:
  BuiltinsTest()
      : catalog_(MakePaperCatalog()),
        query_(ParseSql(catalog_,
                        "SELECT EMP.NAME FROM DEPT, EMP WHERE "
                        "DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO AND "
                        "EMP.SALARY > 1000")
                   .ValueOrDie()) {
    EXPECT_TRUE(RegisterBuiltinFunctions(&registry_).ok());
    ctx_.query = &query_;
  }

  RuleValue Call(const char* fn, std::vector<RuleValue> args) {
    const RuleFn* f = registry_.Find(fn).ValueOrDie();
    auto r = (*f)(args, ctx_);
    EXPECT_TRUE(r.ok()) << fn << ": " << r.status().ToString();
    return r.ok() ? r.value() : RuleValue();
  }

  Status CallErr(const char* fn, std::vector<RuleValue> args) {
    const RuleFn* f = registry_.Find(fn).ValueOrDie();
    auto r = (*f)(args, ctx_);
    return r.ok() ? Status::OK() : r.status();
  }

  StreamSpec Dept() {
    return StreamSpec{QuantifierSet::Single(0), PredSet{}, {}};
  }
  StreamSpec Emp() {
    return StreamSpec{QuantifierSet::Single(1), PredSet{}, {}};
  }

  Catalog catalog_;
  Query query_;
  FunctionRegistry registry_;
  RuleFnContext ctx_;
};

TEST_F(BuiltinsTest, SetAlgebra) {
  PredSet a = PredSet::Single(0).Union(PredSet::Single(1));
  PredSet b = PredSet::Single(1).Union(PredSet::Single(2));
  EXPECT_EQ(Call("union", {a, b}).as<PredSet>().size(), 3);
  EXPECT_EQ(Call("minus", {a, b}).as<PredSet>(), PredSet::Single(0));
  EXPECT_EQ(Call("intersect", {a, b}).as<PredSet>(), PredSet::Single(1));
  EXPECT_TRUE(Call("empty", {PredSet{}}).as<bool>());
  EXPECT_TRUE(Call("nonempty", {a}).as<bool>());
  EXPECT_EQ(Call("size", {a}).as<int64_t>(), 2);
  // monostate coerces to the empty predicate set (φ).
  EXPECT_EQ(Call("union", {a, RuleValue()}).as<PredSet>(), a);
  EXPECT_FALSE(CallErr("union", {a, RuleValue(int64_t{1})}).ok());
}

TEST_F(BuiltinsTest, Logic) {
  EXPECT_TRUE(Call("and", {true, true, true}).as<bool>());
  EXPECT_FALSE(Call("and", {true, false}).as<bool>());
  EXPECT_TRUE(Call("or", {false, true}).as<bool>());
  EXPECT_FALSE(Call("or", {}).as<bool>());
  EXPECT_TRUE(Call("and", {}).as<bool>());
  EXPECT_TRUE(Call("not", {false}).as<bool>());
  EXPECT_TRUE(Call("eq", {int64_t{3}, int64_t{3}}).as<bool>());
  EXPECT_TRUE(
      Call("eq", {std::string("x"), std::string("x")}).as<bool>());
  EXPECT_TRUE(Call("lt", {std::string("a"), std::string("b")}).as<bool>());
  EXPECT_FALSE(Call("lt", {int64_t{5}, int64_t{5}}).as<bool>());
}

TEST_F(BuiltinsTest, PredicateClassification) {
  PredSet all = query_.AllPredicates();
  RuleValue t1(Dept()), t2(Emp());
  // Pred 1 (DNO = DNO) is the only join predicate.
  EXPECT_EQ(Call("join_preds", {all, t1, t2}).as<PredSet>(),
            PredSet::Single(1));
  EXPECT_EQ(Call("sortable_preds", {all, t1, t2}).as<PredSet>(),
            PredSet::Single(1));
  EXPECT_EQ(Call("hashable_preds", {all, t1, t2}).as<PredSet>(),
            PredSet::Single(1));
  EXPECT_EQ(Call("indexable_preds", {all, t1, t2}).as<PredSet>(),
            PredSet::Single(1));
  // Pred 2 (SALARY > 1000) is inner-only on EMP.
  EXPECT_EQ(Call("inner_preds", {all, t2}).as<PredSet>(),
            PredSet::Single(2));
  EXPECT_EQ(Call("inner_preds", {all, t1}).as<PredSet>(),
            PredSet::Single(0));
}

TEST_F(BuiltinsTest, ColumnDerivation) {
  RuleValue t1(Dept()), t2(Emp());
  PredSet jp = PredSet::Single(1);
  SortOrder dept_side = Call("sort_cols", {jp, t1}).as<SortOrder>();
  ASSERT_EQ(dept_side.size(), 1u);
  EXPECT_EQ(query_.ColumnName(dept_side[0]), "DEPT.DNO");
  SortOrder emp_side = Call("sort_cols", {jp, t2}).as<SortOrder>();
  EXPECT_EQ(query_.ColumnName(emp_side[0]), "EMP.DNO");

  SortOrder ix =
      Call("index_cols", {PredSet::Single(2), jp, t2}).as<SortOrder>();
  // '=' predicates first: DNO (from the join pred) leads; SALARY (range)
  // follows.
  ASSERT_EQ(ix.size(), 2u);
  EXPECT_EQ(query_.ColumnName(ix[0]), "EMP.DNO");
  EXPECT_EQ(query_.ColumnName(ix[1]), "EMP.SALARY");

  SortOrder cols = Call("access_cols", {t2, jp}).as<SortOrder>();
  // NAME (select), DNO (join pred), SALARY (single pred) — all needed.
  EXPECT_EQ(cols.size(), 3u);

  SortOrder tid = Call("tid_col", {t2}).as<SortOrder>();
  ASSERT_EQ(tid.size(), 1u);
  EXPECT_TRUE(tid[0].is_tid());
}

TEST_F(BuiltinsTest, CatalogAccess) {
  RuleValue t1(Dept()), t2(Emp());
  EXPECT_EQ(Call("storage_kind", {t1}).as<std::string>(), "heap");
  EXPECT_EQ(Call("quant", {t2}).as<int64_t>(), 1);
  RuleList ix = Call("indexes_on", {t2}).as<RuleList>();
  ASSERT_EQ(ix.size(), 1u);
  EXPECT_EQ(ix[0].as<std::string>(), "EMP_DNO_IX");
  EXPECT_TRUE(Call("indexes_on", {t1}).as<RuleList>().empty());

  SortOrder key =
      Call("index_key", {t2, std::string("EMP_DNO_IX")}).as<SortOrder>();
  ASSERT_EQ(key.size(), 1u);
  EXPECT_EQ(query_.ColumnName(key[0]), "EMP.DNO");
  SortOrder key_tid =
      Call("key_and_tid", {t2, std::string("EMP_DNO_IX")}).as<SortOrder>();
  EXPECT_EQ(key_tid.size(), 2u);

  // Prefix-eligibility through the index.
  PredSet kp = Call("index_eligible_preds",
                    {t2, std::string("EMP_DNO_IX"), query_.AllPredicates()})
                   .as<PredSet>();
  EXPECT_EQ(kp, PredSet::Single(1));
  EXPECT_FALSE(
      CallErr("index_key", {t2, std::string("NOPE")}).ok());
}

TEST_F(BuiltinsTest, SiteFunctions) {
  EXPECT_TRUE(Call("is_local_query", {}).as<bool>());
  EXPECT_EQ(Call("natural_site", {RuleValue(Dept())}).as<int64_t>(), 0);
  EXPECT_EQ(Call("required_site", {RuleValue(Dept())}).as<int64_t>(), -1);
  StreamSpec required = Dept();
  required.required.site = 0;
  EXPECT_EQ(Call("required_site", {RuleValue(required)}).as<int64_t>(), 0);
  StreamSpec sited = Dept();
  sited.required.site = 0;
  sited.required.temp = true;
  StreamSpec stripped =
      Call("at_natural_site", {RuleValue(sited)}).as<StreamSpec>();
  EXPECT_FALSE(stripped.required.site.has_value());
  EXPECT_FALSE(stripped.required.temp);
  RuleList sites = Call("sites", {}).as<RuleList>();
  EXPECT_EQ(sites.size(), 1u);  // centralized catalog: only the query site
}

TEST_F(BuiltinsTest, SessionParameters) {
  ctx_.allow_composite_inner = false;
  ctx_.allow_cartesian = true;
  EXPECT_FALSE(Call("allow_composite_inner", {}).as<bool>());
  EXPECT_TRUE(Call("allow_cartesian", {}).as<bool>());
}

TEST_F(BuiltinsTest, ArityAndTypeErrors) {
  EXPECT_FALSE(CallErr("union", {PredSet{}}).ok());
  EXPECT_FALSE(CallErr("quant", {RuleValue(int64_t{1})}).ok());
  EXPECT_FALSE(CallErr("sort_cols", {PredSet{}}).ok());
  EXPECT_FALSE(registry_.Find("no_such_function").ok());
  // A two-table stream is not a valid single-quantifier argument.
  StreamSpec both;
  both.tables = QuantifierSet::FirstN(2);
  EXPECT_FALSE(CallErr("quant", {RuleValue(both)}).ok());
}

}  // namespace
}  // namespace starburst
