// Tests for the deterministic fault-injection harness: spec parsing, exact
// nth-hit and seeded probabilistic firing, a parameterized sweep proving
// every registered site surfaces as a descriptive non-OK Status (never a
// crash, hang, or silent wrong answer), and executor state release on
// failure.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "catalog/synthetic.h"
#include "common/fault_injector.h"
#include "exec/evaluator.h"
#include "optimizer/optimizer.h"
#include "sql/parser.h"
#include "star/default_rules.h"
#include "storage/datagen.h"
#include "test_util.h"

namespace starburst {
namespace {

// Restores the process-global injector to "off" even if a test assertion
// bails out early.
struct GlobalFaultGuard {
  ~GlobalFaultGuard() { (void)FaultInjector::Global()->Configure("off"); }
};

TEST(FaultSpecTest, ParsesValidSpecs) {
  FaultInjector f;
  EXPECT_TRUE(f.Configure("").ok());
  EXPECT_FALSE(f.armed());
  EXPECT_TRUE(f.Configure("off").ok());
  EXPECT_FALSE(f.armed());
  EXPECT_TRUE(f.Configure("exec.scan.open=2").ok());
  EXPECT_TRUE(f.armed());
  EXPECT_TRUE(f.Configure("seed=7,rate=0.02").ok());
  EXPECT_TRUE(f.armed());
  EXPECT_TRUE(f.Configure("glue.store=0.5").ok());
  EXPECT_TRUE(f.Configure(" seed=1 , engine.expand=3 ").ok());
  EXPECT_TRUE(f.Configure("off").ok());
}

TEST(FaultSpecTest, RejectsMalformedSpecs) {
  FaultInjector f;
  EXPECT_FALSE(f.Configure("bogus.site=1").ok());
  EXPECT_FALSE(f.Configure("rate=1.5").ok());
  EXPECT_FALSE(f.Configure("rate=x").ok());
  EXPECT_FALSE(f.Configure("seed=abc").ok());
  EXPECT_FALSE(f.Configure("exec.scan.open").ok());
  EXPECT_FALSE(f.Configure("exec.scan.open=0").ok());
  EXPECT_FALSE(f.Configure("exec.scan.open=-1").ok());
  // The error names the known sites, so typos are self-diagnosing.
  Status st = f.Configure("exec.scan.opne=1");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("exec.scan.open"), std::string::npos)
      << st.ToString();
  // A rejected spec leaves the previous configuration untouched.
  ASSERT_TRUE(f.Configure("exec.scan.open=1").ok());
  EXPECT_FALSE(f.Configure("bogus.site=1").ok());
  EXPECT_TRUE(f.armed());
}

TEST(FaultSpecTest, NthHitFiresExactlyOnce) {
  FaultInjector f;
  ASSERT_TRUE(f.Configure("exec.scan.open=2").ok());
  EXPECT_TRUE(f.Check(faultsite::kExecScanOpen).ok());
  Status st = f.Check(faultsite::kExecScanOpen);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("injected fault at exec.scan.open"),
            std::string::npos)
      << st.ToString();
  EXPECT_TRUE(f.Check(faultsite::kExecScanOpen).ok());
  // Other sites are unaffected.
  EXPECT_TRUE(f.Check(faultsite::kExecJoinRun).ok());
  EXPECT_EQ(f.hits(faultsite::kExecScanOpen), 3);
}

TEST(FaultSpecTest, HitsCountedWheneverConfigured) {
  FaultInjector f;
  // Unconfigured: Check is a pure no-op and nothing is counted.
  EXPECT_TRUE(f.Check(faultsite::kExecScanOpen).ok());
  EXPECT_EQ(f.hits(faultsite::kExecScanOpen), 0);
  // A bare seed can never fire — but it IS a configuration, so sweeps can
  // measure which sites a workload reaches without tripping anything.
  ASSERT_TRUE(f.Configure("seed=7").ok());
  EXPECT_FALSE(f.armed());
  EXPECT_TRUE(f.Check(faultsite::kExecScanOpen).ok());
  EXPECT_TRUE(f.Check(faultsite::kExecScanOpen).ok());
  EXPECT_EQ(f.hits(faultsite::kExecScanOpen), 2);
  // rate=0.0 likewise counts without firing.
  ASSERT_TRUE(f.Configure("rate=0.0").ok());
  EXPECT_FALSE(f.armed());
  EXPECT_TRUE(f.Check(faultsite::kExecSpillWrite).ok());
  EXPECT_EQ(f.hits(faultsite::kExecSpillWrite), 1);
  // "off" returns Check to the uncounted fast path.
  ASSERT_TRUE(f.Configure("off").ok());
  EXPECT_TRUE(f.Check(faultsite::kExecSpillWrite).ok());
  EXPECT_EQ(f.hits(faultsite::kExecSpillWrite), 0);
}

TEST(FaultSpecTest, SeededRateIsDeterministic) {
  auto pattern = [](const std::string& spec) {
    FaultInjector f;
    EXPECT_TRUE(f.Configure(spec).ok());
    std::vector<bool> fired;
    for (int i = 0; i < 300; ++i) {
      fired.push_back(!f.Check(faultsite::kEngineExpand).ok());
    }
    return fired;
  };
  auto a = pattern("seed=11,rate=0.1");
  auto b = pattern("seed=11,rate=0.1");
  EXPECT_EQ(a, b);
  EXPECT_GT(std::count(a.begin(), a.end(), true), 0);
  auto c = pattern("seed=12,rate=0.1");
  EXPECT_NE(a, c);
}

// A composite workload that, fault-free, hits every registered fault site:
//   - optimize + execute a two-table join with ORDER BY (engine.expand,
//     glue.resolve, exec.scan.open, exec.join.run, exec.sort.run);
//   - re-run the same plan on the vectorized engine under a 1-byte execution
//     memory budget, forcing SORT to spill to temp files (exec.spill.open,
//     exec.spill.write, exec.spill.read);
//   - resolve a temp-required stream through Glue and execute the resulting
//     STORE plan (glue.store, exec.store.run);
//   - execute a hand-built ACCESS(temp) probe over a STORE — the shape Glue
//     builds for correlated temp probes, here with an uncorrelated predicate
//     so it runs without an outer binding (exec.temp.probe).
// Returns every Status produced, in order.
std::vector<Status> RunCompositeWorkload() {
  std::vector<Status> out;
  Catalog catalog = MakePaperCatalog();
  Database db(catalog);
  Status pop = PopulatePaperDatabase(&db, /*seed=*/42, /*scale=*/0.05);
  if (!pop.ok()) {
    out.push_back(pop);
    return out;
  }
  Query query =
      ParseSql(catalog,
               "SELECT EMP.NAME FROM DEPT, EMP WHERE DEPT.DNO = EMP.DNO "
               "ORDER BY EMP.NAME")
          .ValueOrDie();

  Optimizer optimizer(DefaultRuleSet());
  auto optimized = optimizer.Optimize(query);
  out.push_back(optimized.ok() ? Status::OK() : optimized.status());
  if (optimized.ok()) {
    auto rows = ExecutePlan(db, query, optimized.value().best);
    out.push_back(rows.ok() ? Status::OK() : rows.status());
    // Spilling leg: the 1-byte budget makes every SORT drain spill its
    // buffered runs, so the exec.spill.* sites are reached on a fault-free
    // run.
    ExecOptions spill_opts;
    spill_opts.vectorized = 1;
    spill_opts.exec_mem_limit = 1;
    spill_opts.exec_deadline_ms = -1;
    auto spilled = ExecutePlan(db, query, optimized.value().best, spill_opts);
    out.push_back(spilled.ok() ? Status::OK() : spilled.status());
  }

  EngineHarness harness(query, DefaultRuleSet());
  StreamSpec spec;
  spec.tables = QuantifierSet::Single(0);
  spec.required.temp = true;
  auto sap = harness.glue().Resolve(spec);
  out.push_back(sap.ok() ? Status::OK() : sap.status());
  if (sap.ok()) {
    PlanPtr temp_plan = CheapestPlan(sap.value(), harness.cost_model());
    if (temp_plan != nullptr) {
      Executor exec(db, query);
      auto rows = exec.Run(temp_plan);
      out.push_back(rows.ok() ? Status::OK() : rows.status());
    }
  }

  Query probe_query =
      ParseSql(catalog, "SELECT EMP.NAME FROM EMP WHERE EMP.SALARY = 100")
          .ValueOrDie();
  EngineHarness probe_harness(probe_query, DefaultRuleSet());
  OpArgs scan_args;
  scan_args.Set(arg::kQuantifier, int64_t{0});
  scan_args.Set(arg::kCols,
                std::vector<ColumnRef>{ColumnRef{0, 2}, ColumnRef{0, 4}});
  auto plain =
      probe_harness.factory().Make(op::kAccess, flavor::kHeap, {}, scan_args);
  if (plain.ok()) {
    OpArgs store_args;
    store_args.Set(arg::kTempName, std::string("probe_temp"));
    auto stored = probe_harness.factory().Make(op::kStore, "",
                                               {plain.value()},
                                               std::move(store_args));
    if (stored.ok()) {
      OpArgs probe_args;
      probe_args.Set(arg::kPreds, probe_query.AllPredicates());
      auto probed = probe_harness.factory().Make(op::kAccess, flavor::kTemp,
                                                 {stored.value()},
                                                 std::move(probe_args));
      if (probed.ok()) {
        Executor exec(db, probe_query);
        auto rows = exec.Run(probed.value());
        out.push_back(rows.ok() ? Status::OK() : rows.status());
      } else {
        out.push_back(probed.status());
      }
    } else {
      out.push_back(stored.status());
    }
  } else {
    out.push_back(plain.status());
  }
  return out;
}

TEST(FaultInjectionTest, CompositeWorkloadCoversEverySite) {
  GlobalFaultGuard guard;
  FaultInjector* g = FaultInjector::Global();
  // Armed but never firing (the hit count is far beyond the workload), so
  // every Check is counted.
  ASSERT_TRUE(g->Configure("engine.expand=1000000000").ok());
  auto statuses = RunCompositeWorkload();
  for (const Status& st : statuses) {
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
  for (const std::string& site : KnownFaultSites()) {
    EXPECT_GT(g->hits(site), 0) << "workload never reached site " << site;
  }
}

class FaultSiteTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FaultSiteTest, InjectedFaultSurfacesAsDescriptiveStatus) {
  GlobalFaultGuard guard;
  const std::string& site = GetParam();
  ASSERT_TRUE(FaultInjector::Global()->Configure(site + "=1").ok());
  auto statuses = RunCompositeWorkload();
  bool saw_fault = false;
  for (const Status& st : statuses) {
    if (st.ok()) continue;
    saw_fault = true;
    EXPECT_NE(st.ToString().find("injected fault at " + site),
              std::string::npos)
        << st.ToString();
  }
  EXPECT_TRUE(saw_fault) << "first hit of " << site << " did not surface";
}

INSTANTIATE_TEST_SUITE_P(
    AllSites, FaultSiteTest, ::testing::ValuesIn(KnownFaultSites()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      std::replace(name.begin(), name.end(), '.', '_');
      return name;
    });

TEST(FaultInjectionTest, ExecutorReleasesStateOnFailure) {
  Catalog catalog = MakePaperCatalog();
  Database db(catalog);
  ASSERT_TRUE(PopulatePaperDatabase(&db, /*seed=*/42, /*scale=*/0.05).ok());
  Query query =
      ParseSql(catalog,
               "SELECT EMP.NAME FROM DEPT, EMP WHERE DEPT.DNO = EMP.DNO")
          .ValueOrDie();
  Optimizer optimizer(DefaultRuleSet());
  auto optimized = optimizer.Optimize(query);
  ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();

  // The *second* scan open fails: by then the first input is materialized
  // and cached, so the release-on-failure path has real state to drop.
  FaultInjector local;
  ASSERT_TRUE(local.Configure("exec.scan.open=2").ok());
  Executor exec(db, query);
  exec.set_faults(&local);
  auto failed = exec.Run(optimized.value().best);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().ToString().find("injected fault"),
            std::string::npos)
      << failed.status().ToString();
  EXPECT_EQ(exec.cached_materializations(), 0u);

  // After disarming, the same executor runs the same plan cleanly.
  ASSERT_TRUE(local.Configure("off").ok());
  auto rerun = exec.Run(optimized.value().best);
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  EXPECT_FALSE(rerun.value().rows.empty());
}

TEST(FaultInjectionTest, SeededGlobalSweepIsDeterministic) {
  GlobalFaultGuard guard;
  auto sweep = [](const std::string& spec) {
    FaultInjector* g = FaultInjector::Global();
    EXPECT_TRUE(g->Configure(spec).ok());
    std::vector<std::string> texts;
    for (const Status& st : RunCompositeWorkload()) {
      texts.push_back(st.ToString());
    }
    return texts;
  };
  auto a = sweep("seed=3,rate=0.05");
  auto b = sweep("seed=3,rate=0.05");
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace starburst
