// Negative-input corpus for both parsers (SQL and the STAR rule DSL):
// truncated input, bad tokens, unbalanced structure, pathological nesting,
// and seeded garbage. Every case must come back as a Status — never a crash
// or unbounded recursion (the ASan/UBSan CI jobs run these too).

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "catalog/synthetic.h"
#include "sql/parser.h"
#include "star/dsl_parser.h"

namespace starburst {
namespace {

TEST(SqlCorpusTest, TruncatedInputsReturnStatus) {
  Catalog catalog = MakePaperCatalog();
  const std::vector<std::string> corpus = {
      "",
      "SELECT",
      "SELECT EMP",
      "SELECT EMP.",
      "SELECT EMP.NAME",
      "SELECT EMP.NAME FROM",
      "SELECT EMP.NAME FROM EMP WHERE",
      "SELECT EMP.NAME FROM EMP WHERE EMP.DNO",
      "SELECT EMP.NAME FROM EMP WHERE EMP.DNO =",
      "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = (",
      "SELECT EMP.NAME FROM EMP ORDER BY",
      "SELECT EMP.NAME FROM EMP ORDER",
  };
  for (const std::string& sql : corpus) {
    auto parsed = ParseSql(catalog, sql);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << sql;
  }
}

TEST(SqlCorpusTest, BadTokensReturnStatus) {
  Catalog catalog = MakePaperCatalog();
  const std::vector<std::string> corpus = {
      "SELECT @ FROM EMP",
      "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = #3",
      "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = 'unterminated",
      "SELECT EMP.NAME FROM NO_SUCH_TABLE",
      "SELECT EMP.NO_SUCH_COLUMN FROM EMP",
      "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = 3 trailing garbage",
      "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = ((3)",
      "SELECT EMP.NAME FROM EMP, FROM DEPT",
  };
  for (const std::string& sql : corpus) {
    auto parsed = ParseSql(catalog, sql);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << sql;
  }
}

TEST(SqlCorpusTest, DeepNestingIsBoundedNotFatal) {
  Catalog catalog = MakePaperCatalog();
  auto nested = [](int depth) {
    std::string sql = "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = ";
    sql.append(static_cast<size_t>(depth), '(');
    sql += "3";
    sql.append(static_cast<size_t>(depth), ')');
    return sql;
  };
  // Comfortably inside the limit: parses.
  EXPECT_TRUE(ParseSql(catalog, nested(50)).ok());
  // Far beyond it: a ParseError naming the nesting limit, not a stack
  // overflow.
  auto deep = ParseSql(catalog, nested(5000));
  ASSERT_FALSE(deep.ok());
  EXPECT_NE(deep.status().ToString().find("nesting"), std::string::npos)
      << deep.status().ToString();
}

TEST(SqlCorpusTest, SeededGarbageNeverCrashes) {
  Catalog catalog = MakePaperCatalog();
  std::mt19937 rng(1234);
  const std::string alphabet =
      "SELECT FROM WHERE().,=<>*'\"0123456789abcXYZ @#\t\n";
  std::uniform_int_distribution<size_t> pick(0, alphabet.size() - 1);
  std::uniform_int_distribution<size_t> len(0, 120);
  for (int i = 0; i < 300; ++i) {
    std::string input;
    size_t n = len(rng);
    for (size_t j = 0; j < n; ++j) input += alphabet[pick(rng)];
    // Any Status outcome is acceptable; the property is "returns".
    auto parsed = ParseSql(catalog, input);
    (void)parsed;
  }
}

TEST(DslCorpusTest, TruncatedAndMalformedInputsReturnStatus) {
  const std::vector<std::string> corpus = {
      "star",
      "star Broken",
      "star Broken(",
      "star Broken(T",
      "star Broken(T)",
      "star Broken(T) alt",
      "star Broken(T) alt 'x'",
      "star Broken(T) alt 'x':",
      "star Broken(T) alt 'x': T",           // missing end
      "star Broken(T) alt 'x': f(T end",     // unbalanced call
      "star Broken(T) alt 'x': 'oops end",   // unterminated string
      "star Broken(T) alt 'x': T[order] end",
      "star Broken(T) where alt 'x': T end",
      "end",
      "alt 'x': T end",
  };
  for (const std::string& text : corpus) {
    auto parsed = ParseRules(text);
    EXPECT_FALSE(parsed.ok()) << "accepted: " << text;
  }
}

TEST(DslCorpusTest, DeepNestingIsBoundedNotFatal) {
  auto nested = [](int depth) {
    std::string body;
    for (int i = 0; i < depth; ++i) body += "f(";
    body += "T";
    body.append(static_cast<size_t>(depth), ')');
    return "star Deep(T)\n  alt 'x':\n    " + body + "\nend\n";
  };
  EXPECT_TRUE(ParseRules(nested(50)).ok());
  auto deep = ParseRules(nested(5000));
  ASSERT_FALSE(deep.ok());
  EXPECT_NE(deep.status().ToString().find("nesting"), std::string::npos)
      << deep.status().ToString();
}

TEST(DslCorpusTest, SeededGarbageNeverCrashes) {
  std::mt19937 rng(4321);
  const std::string alphabet =
      "star alt end where if forall in do (){}[]:;=,'AbcT0123 \t\n";
  std::uniform_int_distribution<size_t> pick(0, alphabet.size() - 1);
  std::uniform_int_distribution<size_t> len(0, 120);
  for (int i = 0; i < 300; ++i) {
    std::string input;
    size_t n = len(rng);
    for (size_t j = 0; j < n; ++j) input += alphabet[pick(rng)];
    auto parsed = ParseRules(input);
    (void)parsed;
  }
}

}  // namespace
}  // namespace starburst
