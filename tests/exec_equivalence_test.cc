// Differential harness for the two execution engines: the vectorized batch
// pipeline must reproduce the legacy row-at-a-time interpreter (the
// STARBURST_VECTORIZED=0 oracle) as an exact multiset — across optimizer
// output for every join flavor, across batch sizes (including 1, which makes
// every streaming boundary visible), and under deterministic fault
// injection, where both engines must fail at the same site with the same
// status or both succeed with identical rows.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "catalog/synthetic.h"
#include "common/fault_injector.h"
#include "cost/cost_model.h"
#include "exec/evaluator.h"
#include "optimizer/optimizer.h"
#include "plan/explain.h"
#include "properties/property_functions.h"
#include "sql/parser.h"
#include "star/default_rules.h"
#include "storage/datagen.h"

namespace starburst {
namespace {

const int kBatchSizes[] = {1, 7, 1024, 4096};

Result<ResultSet> RunEngine(const Database& db, const Query& query,
                            const PlanPtr& plan, bool vectorized,
                            int batch_size = 1024,
                            FaultInjector* faults = nullptr,
                            PlanRunStats* stats = nullptr,
                            int exec_threads = 0,
                            int64_t exec_mem_limit = 0,
                            ExecProfile* profile = nullptr,
                            int typed_kernels = -1) {
  ExecOptions options;
  options.vectorized = vectorized ? 1 : 0;
  options.batch_size = batch_size;
  options.faults = faults;
  options.stats = stats;
  options.exec_threads = exec_threads;
  options.exec_mem_limit = exec_mem_limit;
  options.profile_sink = profile;
  options.typed_kernels = typed_kernels;
  return ExecutePlan(db, query, plan, options);
}

void ExpectEnginesAgree(const Database& db, const Query& query,
                        const PlanPtr& plan) {
  auto oracle = RunEngine(db, query, plan, /*vectorized=*/false);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString() << "\nplan:\n"
                           << ExplainPlan(*plan, query);
  std::vector<Tuple> want = CanonicalRows(oracle.value().rows);
  // The typed-kernel axis rides along: fused kernels (1) and the
  // interpreter-only configuration (0) must both reproduce the oracle.
  for (int kernels : {1, 0}) {
    for (int batch_size : kBatchSizes) {
      auto got = RunEngine(db, query, plan, /*vectorized=*/true, batch_size,
                           nullptr, nullptr, 0, 0, nullptr, kernels);
      ASSERT_TRUE(got.ok()) << got.status().ToString() << "\nbatch_size="
                            << batch_size << " kernels=" << kernels
                            << "\nplan:\n" << ExplainPlan(*plan, query);
      ASSERT_EQ(got.value().schema, oracle.value().schema)
          << "schema diverged at batch_size=" << batch_size;
      std::vector<Tuple> have = CanonicalRows(got.value().rows);
      ASSERT_EQ(have.size(), want.size())
          << "row count diverged at batch_size=" << batch_size
          << " kernels=" << kernels << "\nplan:\n"
          << ExplainPlan(*plan, query);
      for (size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(have[i].size(), want[i].size());
        for (size_t j = 0; j < want[i].size(); ++j) {
          ASSERT_EQ(have[i][j].Compare(want[i][j]), 0)
              << "row " << i << " col " << j << " diverged at batch_size="
              << batch_size << " kernels=" << kernels << "\nplan:\n"
              << ExplainPlan(*plan, query);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Optimizer-produced plans: every alternative in the final SAP, every join
// flavor the rule set can emit.
// ---------------------------------------------------------------------------

void SweepQuery(const Database& db, const Catalog& catalog,
                const std::string& sql) {
  auto query_r = ParseSql(catalog, sql);
  ASSERT_TRUE(query_r.ok()) << query_r.status().ToString();
  const Query& query = query_r.value();
  DefaultRuleOptions rule_opts;
  rule_opts.merge_join = true;
  rule_opts.hash_join = true;
  rule_opts.dynamic_index = true;
  rule_opts.forced_projection = true;
  Optimizer opt(DefaultRuleSet(rule_opts));
  auto result = opt.Optimize(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const SAP& plans = result.value().final_plans;
  ASSERT_GE(plans.size(), 1u) << sql;
  for (const PlanPtr& plan : plans) {
    ExpectEnginesAgree(db, query, plan);
  }
}

TEST(ExecEquivalenceTest, PaperQueriesAgreeAcrossEnginesAndBatchSizes) {
  Catalog catalog = MakePaperCatalog();
  Database db(catalog);
  ASSERT_TRUE(PopulatePaperDatabase(&db, /*seed=*/7, /*scale=*/0.05).ok());
  SweepQuery(db, catalog,
             "SELECT EMP.NAME, EMP.ADDRESS FROM DEPT, EMP "
             "WHERE DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO");
  SweepQuery(db, catalog,
             "SELECT EMP.NAME, EMP.SALARY FROM EMP "
             "WHERE EMP.SALARY >= 100000 ORDER BY EMP.SALARY");
  // Cross-table residual (SALARY vs BUDGET) rides on top of the equality
  // key: exercises the residual-only check after MG/HA key matching.
  SweepQuery(db, catalog,
             "SELECT DEPT.DNAME, EMP.NAME FROM DEPT, EMP "
             "WHERE DEPT.DNO = EMP.DNO AND EMP.SALARY >= DEPT.BUDGET");
}

TEST(ExecEquivalenceTest, SyntheticChainAgreesAcrossEngines) {
  SyntheticCatalogOptions opts;
  opts.num_tables = 4;
  opts.min_rows = 200;
  opts.max_rows = 2000;
  opts.seed = 11;
  Catalog catalog = MakeSyntheticCatalog(opts);
  Database db(catalog);
  ASSERT_TRUE(PopulateDatabase(&db, /*seed=*/3, /*scale=*/0.1).ok());
  SweepQuery(db, catalog,
             "SELECT T0.id, T3.c0 FROM T0, T1, T2, T3 WHERE "
             "T1.fk0 = T0.id AND T2.fk0 = T1.id AND "
             "T3.fk0 = T2.id AND T0.c0 = 1");
}

// ---------------------------------------------------------------------------
// Hand-built plans: NULL join keys and correlated nested loops, where the
// engines' structure differs the most.
// ---------------------------------------------------------------------------

class EngineParityTest : public ::testing::Test {
 protected:
  EngineParityTest()
      : catalog_(MakePaperCatalog()),
        db_(catalog_),
        query_(ParseSql(catalog_,
                        "SELECT EMP.NAME, EMP.ADDRESS FROM DEPT, EMP WHERE "
                        "DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO")
                   .ValueOrDie()),
        factory_(query_, cost_model_, registry_) {
    EXPECT_TRUE(RegisterBuiltinOperators(&registry_).ok());
    StoredTable* dept = db_.FindTable("DEPT").ValueOrDie();
    for (int64_t d = 0; d < 4; ++d) {
      std::string mgr = (d % 2 == 0) ? "Haas" : "Other";
      EXPECT_TRUE(dept->Insert({Datum(d), Datum(mgr),
                                Datum("dept" + std::to_string(d)),
                                Datum(int64_t{100})})
                      .ok());
    }
    // A department whose DNO is NULL: it must never join.
    EXPECT_TRUE(dept->Insert({Datum::NullValue(), Datum(std::string("Haas")),
                              Datum(std::string("limbo")),
                              Datum(int64_t{100})})
                    .ok());
    StoredTable* emp = db_.FindTable("EMP").ValueOrDie();
    for (int64_t e = 0; e < 12; ++e) {
      EXPECT_TRUE(emp->Insert({Datum(e), Datum(e % 4),
                               Datum("emp" + std::to_string(e)),
                               Datum("addr" + std::to_string(e)),
                               Datum(int64_t{1000 * (e + 1)})})
                      .ok());
    }
    // And two employees with NULL DNO.
    for (int64_t e = 90; e < 92; ++e) {
      EXPECT_TRUE(emp->Insert({Datum(e), Datum::NullValue(),
                               Datum("ghost" + std::to_string(e)),
                               Datum(std::string("nowhere")),
                               Datum(int64_t{0})})
                      .ok());
    }
    EXPECT_TRUE(db_.Finalize().ok());
  }

  ColumnRef Col(const char* alias, const char* name) {
    return query_.ResolveColumn(alias, name).ValueOrDie();
  }

  PlanPtr DeptScan(PredSet preds = PredSet::Single(0)) {
    OpArgs args;
    args.Set(arg::kQuantifier, int64_t{0});
    args.Set(arg::kCols, std::vector<ColumnRef>{Col("DEPT", "DNO"),
                                                Col("DEPT", "MGR")});
    args.Set(arg::kPreds, preds);
    return factory_.Make(op::kAccess, flavor::kHeap, {}, std::move(args))
        .ValueOrDie();
  }

  PlanPtr EmpScan(PredSet preds = PredSet{}) {
    OpArgs args;
    args.Set(arg::kQuantifier, int64_t{1});
    args.Set(arg::kCols,
             std::vector<ColumnRef>{Col("EMP", "DNO"), Col("EMP", "NAME"),
                                    Col("EMP", "ADDRESS")});
    args.Set(arg::kPreds, preds);
    return factory_.Make(op::kAccess, flavor::kHeap, {}, std::move(args))
        .ValueOrDie();
  }

  PlanPtr Sorted(PlanPtr input, ColumnRef key) {
    OpArgs args;
    args.Set(arg::kOrder, std::vector<ColumnRef>{key});
    return factory_.Make(op::kSort, "", {std::move(input)}, std::move(args))
        .ValueOrDie();
  }

  PlanPtr Join(const std::string& flavor, PlanPtr outer, PlanPtr inner) {
    OpArgs join;
    join.Set(arg::kJoinPreds, PredSet::Single(1));
    join.Set(arg::kResidualPreds, PredSet{});
    return factory_
        .Make(op::kJoin, flavor, {std::move(outer), std::move(inner)},
              std::move(join))
        .ValueOrDie();
  }

  Catalog catalog_;
  Database db_;
  Query query_;
  CostModel cost_model_;
  OperatorRegistry registry_;
  PlanFactory factory_;
};

TEST_F(EngineParityTest, MergeJoinSkipsNullKeysInBothEngines) {
  // NULL sorts first, so both merge inputs lead with the NULL-key rows the
  // join must step over without matching (and without erroring).
  PlanPtr mg = Join(flavor::kMG, Sorted(DeptScan(), Col("DEPT", "DNO")),
                    Sorted(EmpScan(), Col("EMP", "DNO")));
  auto oracle = RunEngine(db_, query_, mg, /*vectorized=*/false);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  EXPECT_EQ(oracle.value().rows.size(), 6u);  // Haas depts 0,2 × 3 emps each
  ExpectEnginesAgree(db_, query_, mg);
}

TEST_F(EngineParityTest, HashJoinSkipsNullKeysInBothEngines) {
  PlanPtr ha = Join(flavor::kHA, DeptScan(), EmpScan());
  auto oracle = RunEngine(db_, query_, ha, /*vectorized=*/false);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  EXPECT_EQ(oracle.value().rows.size(), 6u);  // NULL build and probe keys skip
  ExpectEnginesAgree(db_, query_, ha);
}

TEST_F(EngineParityTest, CorrelatedInnerReopensPerOuterRowUnderVectorization) {
  // Inner EMP scan carries the join predicate (sideways information
  // passing): it must be re-evaluated for each of the three Haas outer rows
  // (DNO 0, 2, and the NULL-DNO one), not once against a stale binding.
  PlanPtr nl = Join(flavor::kNL, DeptScan(), EmpScan(PredSet::Single(1)));
  PlanRunStats stats;
  auto rs = RunEngine(db_, query_, nl, /*vectorized=*/true, /*batch_size=*/3,
                      /*faults=*/nullptr, &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs.value().rows.size(), 6u);
  const PlanOp* inner = nl->inputs[1].get();
  ASSERT_TRUE(stats.count(inner));
  EXPECT_EQ(stats.at(inner).invocations, 3);  // one Open per Haas department
  ExpectEnginesAgree(db_, query_, nl);
}

// ---------------------------------------------------------------------------
// Fault-injection parity: per-site hit counts match between engines, so an
// nth-hit spec either trips both (same status) or trips neither (same rows).
// ---------------------------------------------------------------------------

TEST_F(EngineParityTest, FaultSitesTripIdenticallyInBothEngines) {
  // A plan exercising every exec fault site: scans, STORE into a temp, a
  // correlated temp probe per outer row, the join itself, and a final sort.
  auto make_plan = [this] {
    OpArgs store;
    store.Set(arg::kTempName, std::string("t"));
    PlanPtr stored =
        factory_.Make(op::kStore, "", {EmpScan()}, std::move(store))
            .ValueOrDie();
    OpArgs probe;
    probe.Set(arg::kPreds, PredSet::Single(1));  // correlated join pred
    PlanPtr temp_access =
        factory_.Make(op::kAccess, flavor::kTemp, {stored}, std::move(probe))
            .ValueOrDie();
    PlanPtr nl = Join(flavor::kNL, DeptScan(), std::move(temp_access));
    OpArgs sort;
    sort.Set(arg::kOrder, std::vector<ColumnRef>{Col("EMP", "NAME")});
    return factory_.Make(op::kSort, "", {std::move(nl)}, std::move(sort))
        .ValueOrDie();
  };
  PlanPtr plan = make_plan();

  const char* specs[] = {
      "exec.scan.open=1",  "exec.scan.open=2", "exec.scan.open=3",
      "exec.store.run=1",  "exec.temp.probe=1", "exec.temp.probe=2",
      "exec.temp.probe=3", "exec.join.run=1",  "exec.sort.run=1",
  };
  for (const char* spec : specs) {
    FaultInjector legacy_faults, vec_faults;
    ASSERT_TRUE(legacy_faults.Configure(spec).ok());
    ASSERT_TRUE(vec_faults.Configure(spec).ok());
    auto oracle =
        RunEngine(db_, query_, plan, /*vectorized=*/false, 1024,
                  &legacy_faults);
    auto vec = RunEngine(db_, query_, plan, /*vectorized=*/true, 1024,
                         &vec_faults);
    ASSERT_EQ(oracle.ok(), vec.ok())
        << spec << ": legacy " << oracle.status().ToString() << " vs batch "
        << vec.status().ToString();
    if (!oracle.ok()) {
      EXPECT_EQ(oracle.status().ToString(), vec.status().ToString()) << spec;
    } else {
      EXPECT_EQ(CanonicalRows(oracle.value().rows),
                CanonicalRows(vec.value().rows))
          << spec;
    }
  }
}

// ---------------------------------------------------------------------------
// Exchange parallelism: on a table large enough for morsel pools to engage,
// the vectorized engine's output must be identical IN ORDER — not merely as
// a multiset — across every exec-thread count and batch size, must match
// the legacy oracle as a multiset, and fault specs must trip with identical
// statuses at every thread count.
// ---------------------------------------------------------------------------

class ParallelEquivalenceTest : public ::testing::Test {
 protected:
  ParallelEquivalenceTest() : catalog_(MakePaperCatalog()), db_(catalog_) {
    // scale 0.5 -> EMP 10000 rows / DEPT 250, comfortably above
    // kExchangeMinRows so morsel scans, the partitioned hash build, and the
    // parallel probe all actually run multi-worker at exec_threads > 1.
    Status st = PopulatePaperDatabase(&db_, /*seed=*/7, /*scale=*/0.5);
    if (!st.ok()) ADD_FAILURE() << st.ToString();
  }

  Query Parse(const std::string& sql) {
    return ParseSql(catalog_, sql).ValueOrDie();
  }

  PlanPtr Best(const Query& query) {
    DefaultRuleOptions rule_opts;
    rule_opts.merge_join = true;
    rule_opts.hash_join = true;
    optimizers_.push_back(
        std::make_unique<Optimizer>(DefaultRuleSet(rule_opts)));
    return optimizers_.back()->Optimize(query).ValueOrDie().best;
  }

  // Hand-built JOIN(HA) so the test covers the partitioned build and the
  // parallel probe regardless of which flavor the cost model prefers.
  // `emp_outer` flips which side feeds the probe morsels.
  PlanPtr HashJoinPlan(const Query& query, bool emp_outer) {
    auto col = [&](const char* alias, const char* name) {
      return query.ResolveColumn(alias, name).ValueOrDie();
    };
    OpArgs dept_args;
    dept_args.Set(arg::kQuantifier, int64_t{0});
    dept_args.Set(arg::kCols, std::vector<ColumnRef>{col("DEPT", "DNO"),
                                                     col("DEPT", "MGR")});
    dept_args.Set(arg::kPreds, PredSet{});
    PlanPtr dept =
        factory(query).Make(op::kAccess, flavor::kHeap, {},
                            std::move(dept_args)).ValueOrDie();
    OpArgs emp_args;
    emp_args.Set(arg::kQuantifier, int64_t{1});
    emp_args.Set(arg::kCols,
                 std::vector<ColumnRef>{col("EMP", "DNO"), col("EMP", "NAME"),
                                        col("EMP", "SALARY")});
    emp_args.Set(arg::kPreds, PredSet{});
    PlanPtr emp =
        factory(query).Make(op::kAccess, flavor::kHeap, {},
                            std::move(emp_args)).ValueOrDie();
    OpArgs join;
    join.Set(arg::kJoinPreds, PredSet::Single(0));
    join.Set(arg::kResidualPreds, PredSet{});
    PlanPtr outer = emp_outer ? std::move(emp) : std::move(dept);
    PlanPtr inner = emp_outer ? std::move(dept) : std::move(emp);
    return factory(query)
        .Make(op::kJoin, flavor::kHA, {std::move(outer), std::move(inner)},
              std::move(join))
        .ValueOrDie();
  }

  PlanFactory& factory(const Query& query) {
    factories_.push_back(
        std::make_unique<PlanFactory>(query, cost_model_, registry_));
    return *factories_.back();
  }

  void SetUp() override {
    ASSERT_TRUE(RegisterBuiltinOperators(&registry_).ok());
  }

  // Runs the plan at every (threads, batch_size) combination and requires
  // the rows to match the 1-thread/1024-batch baseline in exact order.
  void ExpectBitIdenticalAcrossThreadsAndBatches(const Query& query,
                                                 const PlanPtr& plan) {
    auto baseline = RunEngine(db_, query, plan, /*vectorized=*/true, 1024,
                              nullptr, nullptr, /*exec_threads=*/1);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    const std::vector<Tuple>& want = baseline.value().rows;
    // The legacy interpreter agrees as a canonical multiset: parallelism
    // must not change WHAT is computed, only how.
    auto oracle = RunEngine(db_, query, plan, /*vectorized=*/false);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    EXPECT_EQ(CanonicalRows(oracle.value().rows), CanonicalRows(want));
    for (int threads : {1, 2, 8}) {
      for (int batch_size : {1, 1024, 4096}) {
        auto got = RunEngine(db_, query, plan, /*vectorized=*/true,
                             batch_size, nullptr, nullptr, threads);
        ASSERT_TRUE(got.ok())
            << got.status().ToString() << " threads=" << threads
            << " batch_size=" << batch_size;
        ASSERT_EQ(got.value().rows.size(), want.size())
            << "threads=" << threads << " batch_size=" << batch_size;
        for (size_t i = 0; i < want.size(); ++i) {
          ASSERT_EQ(got.value().rows[i].size(), want[i].size());
          for (size_t j = 0; j < want[i].size(); ++j) {
            ASSERT_EQ(got.value().rows[i][j].Compare(want[i][j]), 0)
                << "row " << i << " col " << j << " threads=" << threads
                << " batch_size=" << batch_size;
          }
        }
      }
    }
  }

  // The spill axis: the same plan run under a memory budget tight enough to
  // force SORT runs / Grace JOIN(HA) partitions onto disk must reproduce the
  // unlimited in-memory rows in EXACT order at every budget, thread count,
  // and batch size — spilling changes where the bytes live, never the answer.
  void ExpectBitIdenticalUnderSpill(const Query& query, const PlanPtr& plan) {
    auto baseline = RunEngine(db_, query, plan, /*vectorized=*/true, 1024,
                              nullptr, nullptr, /*exec_threads=*/1,
                              /*exec_mem_limit=*/-1);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    const std::vector<Tuple>& want = baseline.value().rows;
    for (int64_t mem_limit : {int64_t{1}, int64_t{64 * 1024}}) {
      for (int threads : {1, 2, 8}) {
        for (int batch_size : {1, 1024, 4096}) {
          auto got = RunEngine(db_, query, plan, /*vectorized=*/true,
                               batch_size, nullptr, nullptr, threads,
                               mem_limit);
          ASSERT_TRUE(got.ok())
              << got.status().ToString() << " mem_limit=" << mem_limit
              << " threads=" << threads << " batch_size=" << batch_size;
          ASSERT_EQ(got.value().rows.size(), want.size())
              << "mem_limit=" << mem_limit << " threads=" << threads
              << " batch_size=" << batch_size;
          for (size_t i = 0; i < want.size(); ++i) {
            ASSERT_EQ(got.value().rows[i].size(), want[i].size());
            for (size_t j = 0; j < want[i].size(); ++j) {
              ASSERT_EQ(got.value().rows[i][j].Compare(want[i][j]), 0)
                  << "row " << i << " col " << j << " mem_limit=" << mem_limit
                  << " threads=" << threads << " batch_size=" << batch_size;
            }
          }
        }
      }
    }
    // And the 1-byte budget really did spill — otherwise the sweep above
    // silently degenerates into re-testing the in-memory path.
    ExecProfile profile;
    auto spilled = RunEngine(db_, query, plan, /*vectorized=*/true, 1024,
                             nullptr, nullptr, /*exec_threads=*/1,
                             /*exec_mem_limit=*/1, &profile);
    ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
    int64_t spill_runs = 0;
    for (const auto& [node, p] : profile.ops()) spill_runs += p.spill_runs;
    EXPECT_GT(spill_runs, 0) << "1-byte budget did not trigger a spill";
  }

  Catalog catalog_;
  Database db_;
  CostModel cost_model_;
  OperatorRegistry registry_;
  std::vector<std::unique_ptr<Optimizer>> optimizers_;
  std::vector<std::unique_ptr<PlanFactory>> factories_;
};

TEST_F(ParallelEquivalenceTest, ScanFilterSortBitIdenticalAcrossThreads) {
  Query query = Parse(
      "SELECT EMP.NAME, EMP.SALARY FROM EMP WHERE EMP.SALARY >= 100000 "
      "ORDER BY EMP.SALARY");
  ExpectBitIdenticalAcrossThreadsAndBatches(query, Best(query));
}

TEST_F(ParallelEquivalenceTest, HashJoinParallelBuildBitIdentical) {
  // DEPT outer / EMP inner: the 10000-row EMP side feeds the partitioned
  // parallel build; the 250-row probe stays inline.
  Query query = Parse(
      "SELECT EMP.NAME, EMP.SALARY FROM DEPT, EMP "
      "WHERE DEPT.DNO = EMP.DNO");
  ExpectBitIdenticalAcrossThreadsAndBatches(
      query, HashJoinPlan(query, /*emp_outer=*/false));
}

TEST_F(ParallelEquivalenceTest, HashJoinParallelProbeBitIdentical) {
  // EMP outer / DEPT inner: the probe side is the big one, so probe morsels
  // fan out while the build stays inline — match emission order must still
  // replay the sequential probe row order and per-key chain order.
  Query query = Parse(
      "SELECT EMP.NAME, EMP.SALARY FROM DEPT, EMP "
      "WHERE DEPT.DNO = EMP.DNO");
  ExpectBitIdenticalAcrossThreadsAndBatches(
      query, HashJoinPlan(query, /*emp_outer=*/true));
}

TEST_F(ParallelEquivalenceTest, OptimizedJoinWithSortBitIdenticalAcrossThreads) {
  Query query = Parse(
      "SELECT EMP.NAME, EMP.SALARY FROM DEPT, EMP "
      "WHERE DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO "
      "ORDER BY EMP.SALARY");
  ExpectBitIdenticalAcrossThreadsAndBatches(query, Best(query));
}

TEST_F(ParallelEquivalenceTest, SortSpillBitIdenticalAcrossBudgets) {
  // External-merge SORT: every spilled run layout (1-byte budget = spill on
  // every drain, 64 KiB = a few large runs) must merge back to exactly the
  // in-memory stable order.
  Query query = Parse(
      "SELECT EMP.NAME, EMP.SALARY FROM EMP WHERE EMP.SALARY >= 100000 "
      "ORDER BY EMP.SALARY");
  ExpectBitIdenticalUnderSpill(query, Best(query));
}

TEST_F(ParallelEquivalenceTest, HashJoinBuildSpillBitIdenticalAcrossBudgets) {
  // DEPT outer / EMP inner: the 10000-row build side Grace-partitions to
  // disk; chain order within each partition must replay global build order.
  Query query = Parse(
      "SELECT EMP.NAME, EMP.SALARY FROM DEPT, EMP "
      "WHERE DEPT.DNO = EMP.DNO");
  ExpectBitIdenticalUnderSpill(query, HashJoinPlan(query, /*emp_outer=*/false));
}

TEST_F(ParallelEquivalenceTest, HashJoinProbeSpillBitIdenticalAcrossBudgets) {
  // EMP outer / DEPT inner: the big probe side spills to partitions, and the
  // index-prefixed 16-way merge must restore streaming emission order.
  Query query = Parse(
      "SELECT EMP.NAME, EMP.SALARY FROM DEPT, EMP "
      "WHERE DEPT.DNO = EMP.DNO");
  ExpectBitIdenticalUnderSpill(query, HashJoinPlan(query, /*emp_outer=*/true));
}

TEST_F(ParallelEquivalenceTest, SpilledJoinWithSortAgreesWithLegacyOracle) {
  // Budgeted vectorized execution vs the unbudgeted legacy interpreter on an
  // optimizer-chosen join+sort plan: spilling must not change the multiset.
  Query query = Parse(
      "SELECT EMP.NAME, EMP.SALARY FROM DEPT, EMP "
      "WHERE DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO "
      "ORDER BY EMP.SALARY");
  PlanPtr plan = Best(query);
  auto oracle = RunEngine(db_, query, plan, /*vectorized=*/false, 1024,
                          nullptr, nullptr, 0, /*exec_mem_limit=*/-1);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  auto spilled = RunEngine(db_, query, plan, /*vectorized=*/true, 1024,
                           nullptr, nullptr, 0, /*exec_mem_limit=*/1);
  ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
  EXPECT_EQ(CanonicalRows(oracle.value().rows),
            CanonicalRows(spilled.value().rows));
}

TEST_F(ParallelEquivalenceTest, FaultSpecsTripIdenticallyAtEveryThreadCount) {
  // Exec fault sites are coordinator-only by contract, so an nth-hit spec
  // must produce the same status string (or the same success) at 1, 2, and
  // 8 workers.
  Query query = Parse(
      "SELECT EMP.NAME, EMP.SALARY FROM DEPT, EMP "
      "WHERE DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO "
      "ORDER BY EMP.SALARY");
  PlanPtr plan = Best(query);
  const char* specs[] = {
      "exec.scan.open=1", "exec.scan.open=2", "exec.join.run=1",
      "exec.sort.run=1",  "exec.scan.open=99",  // never trips
  };
  for (const char* spec : specs) {
    std::string want_status;
    size_t want_rows = 0;
    bool first = true;
    for (int threads : {1, 2, 8}) {
      FaultInjector faults;
      ASSERT_TRUE(faults.Configure(spec).ok());
      auto rs = RunEngine(db_, query, plan, /*vectorized=*/true, 1024,
                          &faults, nullptr, threads);
      std::string status = rs.ok() ? "" : rs.status().ToString();
      size_t rows = rs.ok() ? rs.value().rows.size() : 0;
      if (first) {
        want_status = status;
        want_rows = rows;
        first = false;
      } else {
        EXPECT_EQ(status, want_status) << spec << " threads=" << threads;
        EXPECT_EQ(rows, want_rows) << spec << " threads=" << threads;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Typed-kernel axis: fused kernels (STARBURST_TYPED_KERNELS semantics via
// ExecOptions) vs the interpreter-only oracle, over NULL-heavy columns,
// string predicates, and reorderable conjunctions — bit-identical rows and
// identical fault statuses at every batch size, thread count, and spill
// budget.
// ---------------------------------------------------------------------------

class KernelEquivalenceTest : public ::testing::Test {
 protected:
  KernelEquivalenceTest() : catalog_(MakePaperCatalog()), db_(catalog_) {
    StoredTable* dept = db_.FindTable("DEPT").ValueOrDie();
    for (int64_t d = 0; d < 30; ++d) {
      // Every 6th DNO is NULL; MGR alternates so string equality is
      // selective; BUDGET covers both comparison outcomes.
      Datum dno = (d % 6 == 5) ? Datum::NullValue() : Datum(d % 10);
      std::string mgr = (d % 2 == 0) ? "Haas" : "Other";
      EXPECT_TRUE(dept->Insert({dno, Datum(mgr),
                                Datum("dept" + std::to_string(d)),
                                Datum(int64_t{50 * d})})
                      .ok());
    }
    StoredTable* emp = db_.FindTable("EMP").ValueOrDie();
    for (int64_t e = 0; e < 900; ++e) {
      // NULL-heavy: every 7th DNO and every 11th SALARY are NULL, so both
      // the fused comparisons and the join keys constantly see NULLs.
      Datum dno = (e % 7 == 0) ? Datum::NullValue() : Datum(e % 10);
      Datum salary =
          (e % 11 == 0) ? Datum::NullValue() : Datum(int64_t{500 * e});
      char name[16];
      std::snprintf(name, sizeof(name), "emp%03lld",
                    static_cast<long long>(e));
      EXPECT_TRUE(emp->Insert({Datum(e), dno, Datum(std::string(name)),
                               Datum("addr" + std::to_string(e)), salary})
                      .ok());
    }
    EXPECT_TRUE(db_.Finalize().ok());
  }

  PlanPtr Best(const Query& query) {
    DefaultRuleOptions rule_opts;
    rule_opts.merge_join = true;
    rule_opts.hash_join = true;
    optimizers_.push_back(
        std::make_unique<Optimizer>(DefaultRuleSet(rule_opts)));
    return optimizers_.back()->Optimize(query).ValueOrDie().best;
  }

  // Legacy interpreter is the oracle (multiset); every vectorized
  // configuration — kernels on/off × batch size × exec threads × spill
  // budget — must reproduce it, and kernels on/off must agree bit-for-bit
  // (same row order) at the same (batch, threads, budget) point.
  void SweepKernelAxis(const std::string& sql) {
    auto query_r = ParseSql(catalog_, sql);
    ASSERT_TRUE(query_r.ok()) << query_r.status().ToString();
    const Query& query = query_r.value();
    PlanPtr plan = Best(query);
    auto oracle = RunEngine(db_, query, plan, /*vectorized=*/false);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    std::vector<Tuple> want = CanonicalRows(oracle.value().rows);
    for (int threads : {1, 8}) {
      for (int64_t mem_limit : {int64_t{0}, int64_t{64 * 1024}}) {
        for (int batch_size : kBatchSizes) {
          std::vector<Tuple> on_rows;
          for (int kernels : {1, 0}) {
            auto got = RunEngine(db_, query, plan, /*vectorized=*/true,
                                 batch_size, nullptr, nullptr, threads,
                                 mem_limit, nullptr, kernels);
            ASSERT_TRUE(got.ok())
                << got.status().ToString() << " kernels=" << kernels
                << " threads=" << threads << " batch=" << batch_size
                << " mem=" << mem_limit << "\n" << sql;
            if (kernels == 1) {
              on_rows = got.value().rows;
            } else {
              // Bit-identical: same rows in the same order as kernels-on.
              ASSERT_EQ(got.value().rows.size(), on_rows.size())
                  << "kernels on/off order diverged: threads=" << threads
                  << " batch=" << batch_size << " mem=" << mem_limit;
              for (size_t i = 0; i < on_rows.size(); ++i) {
                ASSERT_EQ(got.value().rows[i].size(), on_rows[i].size());
                for (size_t j = 0; j < on_rows[i].size(); ++j) {
                  ASSERT_EQ(got.value().rows[i][j].Compare(on_rows[i][j]), 0)
                      << "row " << i << " col " << j << " threads=" << threads
                      << " batch=" << batch_size << " mem=" << mem_limit;
                }
              }
            }
            EXPECT_EQ(CanonicalRows(got.value().rows), want)
                << "kernels=" << kernels << " threads=" << threads
                << " batch=" << batch_size << " mem=" << mem_limit << "\n"
                << sql;
          }
        }
      }
    }
  }

  Catalog catalog_;
  Database db_;
  std::vector<std::unique_ptr<Optimizer>> optimizers_;
};

TEST_F(KernelEquivalenceTest, NullHeavyIntConjunction) {
  SweepKernelAxis(
      "SELECT EMP.NAME, EMP.SALARY FROM EMP "
      "WHERE EMP.SALARY >= 100000 AND EMP.DNO = 3");
}

TEST_F(KernelEquivalenceTest, StringPredicates) {
  SweepKernelAxis(
      "SELECT EMP.NAME FROM EMP "
      "WHERE EMP.NAME >= 'emp500' AND EMP.ADDRESS <> 'addr501'");
}

TEST_F(KernelEquivalenceTest, ReorderableConjunctionStaysOracleIdentical) {
  // Three fusible conjuncts with very different selectivities: the adaptive
  // reorder (every 64 kernel calls) must never change the surviving rows.
  SweepKernelAxis(
      "SELECT EMP.ENO, EMP.NAME FROM EMP "
      "WHERE EMP.SALARY >= 0 AND EMP.DNO = 3 AND EMP.NAME >= 'emp001'");
}

TEST_F(KernelEquivalenceTest, TypedKeyHashJoinWithResidual) {
  SweepKernelAxis(
      "SELECT DEPT.DNAME, EMP.NAME FROM DEPT, EMP "
      "WHERE DEPT.DNO = EMP.DNO AND DEPT.BUDGET >= 500 "
      "AND EMP.SALARY >= 100000");
}

TEST_F(KernelEquivalenceTest, KernelsActuallyEngage) {
  // Guard against the whole axis silently degenerating: with kernels on the
  // profile must attribute rows to fused kernels; with them off, none.
  // Predicates deliberately avoid the indexed DNO column so the optimizer
  // picks a heap scan — the index-driven TID-fetch path never fuses.
  auto query_r = ParseSql(catalog_,
                          "SELECT EMP.NAME FROM EMP "
                          "WHERE EMP.SALARY >= 100000 AND EMP.NAME >= "
                          "'emp100'");
  ASSERT_TRUE(query_r.ok());
  const Query& query = query_r.value();
  PlanPtr plan = Best(query);
  for (int kernels : {1, 0}) {
    ExecProfile profile;
    auto rs = RunEngine(db_, query, plan, /*vectorized=*/true, 1024, nullptr,
                        nullptr, 1, 0, &profile, kernels);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    int64_t kernel_rows = 0;
    for (const auto& [node, p] : profile.ops()) kernel_rows += p.kernel_rows;
    if (kernels == 1) {
      EXPECT_GT(kernel_rows, 0) << "typed kernels never engaged";
    } else {
      EXPECT_EQ(kernel_rows, 0) << "kernels ran while disabled";
    }
  }
}

TEST_F(KernelEquivalenceTest, FaultStatusesAgreeAcrossKernelAxis) {
  // A fused FILTER cannot reorder observable errors: any injected fault must
  // trip with the same status (or not at all) whether kernels are on or off.
  auto query_r = ParseSql(catalog_,
                          "SELECT EMP.NAME, EMP.SALARY FROM DEPT, EMP "
                          "WHERE DEPT.DNO = EMP.DNO AND EMP.SALARY >= 100000 "
                          "ORDER BY EMP.SALARY");
  ASSERT_TRUE(query_r.ok());
  const Query& query = query_r.value();
  PlanPtr plan = Best(query);
  const char* specs[] = {
      "exec.scan.open=1", "exec.scan.open=2", "exec.join.run=1",
      "exec.sort.run=1",  "exec.scan.open=99",  // never trips
  };
  for (const char* spec : specs) {
    for (int threads : {1, 8}) {
      FaultInjector on_faults, off_faults;
      ASSERT_TRUE(on_faults.Configure(spec).ok());
      ASSERT_TRUE(off_faults.Configure(spec).ok());
      auto on = RunEngine(db_, query, plan, /*vectorized=*/true, 1024,
                          &on_faults, nullptr, threads, 0, nullptr, 1);
      auto off = RunEngine(db_, query, plan, /*vectorized=*/true, 1024,
                           &off_faults, nullptr, threads, 0, nullptr, 0);
      ASSERT_EQ(on.ok(), off.ok())
          << spec << " threads=" << threads << ": kernels-on "
          << on.status().ToString() << " vs kernels-off "
          << off.status().ToString();
      if (!on.ok()) {
        EXPECT_EQ(on.status().ToString(), off.status().ToString())
            << spec << " threads=" << threads;
      } else {
        EXPECT_EQ(CanonicalRows(on.value().rows),
                  CanonicalRows(off.value().rows))
            << spec << " threads=" << threads;
      }
    }
  }
}

}  // namespace
}  // namespace starburst
