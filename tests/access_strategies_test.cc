// Tests for the paper's §4 "omitted STAR" access strategies: sorting TIDs
// from an unordered index before GET, and ANDing the TID streams of two
// indexes — both as plan generation (rules + property functions) and as
// run-time behavior (executor).

#include <gtest/gtest.h>

#include "catalog/synthetic.h"
#include "exec/evaluator.h"
#include "optimizer/optimizer.h"
#include "plan/explain.h"
#include "sql/parser.h"
#include "star/default_rules.h"
#include "storage/datagen.h"
#include "test_util.h"

namespace starburst {
namespace {

/// A wide table with two secondary indexes, as the index-ANDing strategy
/// wants: preds on both indexed columns, each moderately selective.
Catalog TwoIndexCatalog(double rows = 50000) {
  Catalog cat;
  TableDef t;
  t.name = "EVENTS";
  auto col = [&](const char* name, double distinct) {
    ColumnDef c;
    c.name = name;
    c.distinct_values = distinct;
    c.min_value = 0;
    c.max_value = distinct - 1;
    return c;
  };
  t.columns = {col("id", rows), col("kind", 50), col("region", 40),
               col("payload", 100)};
  t.columns[3].avg_width = 120;
  t.row_count = rows;
  t.data_pages = std::max(1.0, rows / 20.0);
  IndexDef kind_ix;
  kind_ix.name = "ev_kind_ix";
  kind_ix.key_columns = {1};
  kind_ix.leaf_pages = rows / 200.0;
  IndexDef region_ix;
  region_ix.name = "ev_region_ix";
  region_ix.key_columns = {2};
  region_ix.leaf_pages = rows / 200.0;
  t.indexes = {kind_ix, region_ix};
  cat.AddTable(std::move(t)).ValueOrDie();
  return cat;
}

const char* kTwoPredSql =
    "SELECT payload FROM EVENTS WHERE kind = 3 AND region = 5";

TEST(TidSortTest, AlternativeAppearsAndIsCostedSequentially) {
  Catalog cat = TwoIndexCatalog();
  Query query =
      ParseSql(cat, "SELECT payload FROM EVENTS WHERE kind = 3").ValueOrDie();
  DefaultRuleOptions opts;
  opts.tid_sort = true;
  EngineHarness h(query, DefaultRuleSet(opts));

  StreamSpec spec;
  spec.tables = QuantifierSet::Single(0);
  spec.preds = PredSet::Single(0);
  auto sap = h.engine().EvalStar(
      "AccessRoot", {RuleValue(spec), RuleValue(spec.preds)});
  ASSERT_TRUE(sap.ok()) << sap.status().ToString();

  const PlanOp* plain_get = nullptr;
  const PlanOp* tid_sorted = nullptr;
  for (const PlanPtr& p : sap.value()) {
    if (p->name() != op::kGet) continue;
    if (p->inputs[0]->name() == op::kSort) {
      tid_sorted = p.get();
    } else {
      plain_get = p.get();
    }
  }
  ASSERT_NE(plain_get, nullptr);
  ASSERT_NE(tid_sorted, nullptr);
  // 1000 matching rows over 2500 data pages: sorted fetch caps the I/O at
  // the page count, unsorted pays one random I/O per row.
  EXPECT_LT(tid_sorted->props.cost().io, plain_get->props.cost().io);
  // Identical relational content.
  EXPECT_EQ(tid_sorted->props.preds(), plain_get->props.preds());
  EXPECT_EQ(tid_sorted->props.card(), plain_get->props.card());
}

TEST(TidSortTest, ExecutesToSameResultAsPlainIndexScan) {
  Catalog cat = TwoIndexCatalog(400);
  Database db(cat);
  ASSERT_TRUE(PopulateDatabase(&db, 5, 1.0).ok());
  Query query =
      ParseSql(cat, "SELECT id, payload FROM EVENTS WHERE kind = 3")
          .ValueOrDie();

  DefaultRuleOptions with;
  with.tid_sort = true;
  Optimizer opt_with(DefaultRuleSet(with));
  Optimizer opt_without{DefaultRuleSet()};
  auto r_with = opt_with.Optimize(query);
  auto r_without = opt_without.Optimize(query);
  ASSERT_TRUE(r_with.ok());
  ASSERT_TRUE(r_without.ok());
  auto rs_with = ExecutePlan(db, query, r_with.value().best);
  auto rs_without = ExecutePlan(db, query, r_without.value().best);
  ASSERT_TRUE(rs_with.ok()) << rs_with.status().ToString();
  ASSERT_TRUE(rs_without.ok());
  EXPECT_TRUE(SameResult(rs_with.value(), rs_without.value(),
                         query.select_list())
                  .ValueOrDie());
}

TEST(IndexAndTest, AlternativeIntersectsBothIndexes) {
  Catalog cat = TwoIndexCatalog();
  Query query = ParseSql(cat, kTwoPredSql).ValueOrDie();
  DefaultRuleOptions opts;
  opts.index_and = true;
  EngineHarness h(query, DefaultRuleSet(opts));

  StreamSpec spec;
  spec.tables = QuantifierSet::Single(0);
  spec.preds = query.AllPredicates();
  auto sap = h.engine().EvalStar(
      "AccessRoot", {RuleValue(spec), RuleValue(spec.preds)});
  ASSERT_TRUE(sap.ok()) << sap.status().ToString();

  const PlanOp* anded = nullptr;
  for (const PlanPtr& p : sap.value()) {
    if (p->name() == op::kGet && p->inputs[0]->name() == op::kTidAnd) {
      anded = p.get();
    }
  }
  ASSERT_NE(anded, nullptr) << "no TIDAND plan generated";
  const PlanOp& tidand = *anded->inputs[0];
  // Both predicates applied, one by each index.
  EXPECT_EQ(tidand.props.preds(), query.AllPredicates());
  EXPECT_EQ(tidand.inputs[0]->flavor, flavor::kIndex);
  EXPECT_EQ(tidand.inputs[1]->flavor, flavor::kIndex);
  EXPECT_NE(tidand.inputs[0]->args.GetString(arg::kIndex),
            tidand.inputs[1]->args.GetString(arg::kIndex));
  // Output is TID-ordered, so the GET above fetched sequentially.
  SortOrder order = tidand.props.order();
  ASSERT_EQ(order.size(), 1u);
  EXPECT_TRUE(order[0].is_tid());
  // Cardinality: 50000 / 50 / 40 = 25.
  EXPECT_NEAR(tidand.props.card(), 25.0, 0.5);
}

TEST(IndexAndTest, WinsWhenBothPredicatesAreWeakAlone) {
  // Each index alone keeps 2% / 2.5% of a wide table (expensive fetches);
  // the intersection keeps 0.05%.
  Catalog cat = TwoIndexCatalog();
  Query query = ParseSql(cat, kTwoPredSql).ValueOrDie();

  DefaultRuleOptions with;
  with.index_and = true;
  Optimizer opt_with(DefaultRuleSet(with));
  Optimizer opt_without{DefaultRuleSet()};
  auto r_with = opt_with.Optimize(query).ValueOrDie();
  auto r_without = opt_without.Optimize(query).ValueOrDie();
  EXPECT_LT(r_with.total_cost, r_without.total_cost)
      << ExplainPlan(*r_with.best, query);
  EXPECT_NE(PlanSignature(*r_with.best).find("TIDAND"), std::string::npos)
      << ExplainPlan(*r_with.best, query);
}

TEST(IndexAndTest, ExecutionMatchesOracle) {
  Catalog cat = TwoIndexCatalog(500);
  Database db(cat);
  ASSERT_TRUE(PopulateDatabase(&db, 17, 1.0).ok());
  Query query = ParseSql(cat, kTwoPredSql).ValueOrDie();

  DefaultRuleOptions with;
  with.index_and = true;
  Optimizer optimizer(DefaultRuleSet(with));
  auto result = optimizer.Optimize(query).ValueOrDie();
  auto rs = ExecutePlan(db, query, result.best);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();

  const StoredTable& events = *db.FindTable("EVENTS").ValueOrDie();
  int64_t expected = 0;
  for (const Tuple& t : events.rows()) {
    if (t[1].AsInt() == 3 && t[2].AsInt() == 5) ++expected;
  }
  EXPECT_EQ(static_cast<int64_t>(rs.value().rows.size()), expected);
}

TEST(IndexAndTest, SelfPairAndSingleIndexAreRejected) {
  // The lt(i, j) condition suppresses (i, i) and mirrored pairs; a table
  // with one index yields no TIDAND plans at all.
  Catalog cat = MakePaperCatalog();  // EMP has exactly one index
  Query query =
      ParseSql(cat, "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = 3")
          .ValueOrDie();
  DefaultRuleOptions opts;
  opts.index_and = true;
  Optimizer optimizer(DefaultRuleSet(opts));
  auto result = optimizer.Optimize(query).ValueOrDie();
  for (const PlanPtr& p : result.final_plans) {
    EXPECT_EQ(PlanSignature(*p).find("TIDAND"), std::string::npos);
  }
}

TEST(TidAndOperatorTest, PropertyFunctionValidation) {
  Catalog cat = TwoIndexCatalog();
  Query query = ParseSql(cat, kTwoPredSql).ValueOrDie();
  EngineHarness h(query, DefaultRuleSet());

  auto index_access = [&](const char* ix, PredSet preds) {
    OpArgs args;
    args.Set(arg::kQuantifier, int64_t{0});
    args.Set(arg::kIndex, std::string(ix));
    int ord = ix == std::string("ev_kind_ix") ? 1 : 2;
    args.Set(arg::kCols,
             std::vector<ColumnRef>{ColumnRef{0, ord},
                                    ColumnRef{0, ColumnRef::kTidColumn}});
    args.Set(arg::kPreds, preds);
    return h.factory()
        .Make(op::kAccess, flavor::kIndex, {}, std::move(args))
        .ValueOrDie();
  };
  PlanPtr kind = index_access("ev_kind_ix", PredSet::Single(0));
  PlanPtr region = index_access("ev_region_ix", PredSet::Single(1));
  auto ok = h.factory().Make(op::kTidAnd, "", {kind, region}, OpArgs{});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  // Output shape: TID only, TID-ordered, both predicates applied.
  EXPECT_EQ(ok.value()->props.cols().size(), 1u);
  EXPECT_TRUE(ok.value()->props.cols().begin()->is_tid());
  EXPECT_EQ(ok.value()->props.preds(), query.AllPredicates());
  // Arity validation.
  EXPECT_FALSE(h.factory().Make(op::kTidAnd, "", {kind}, OpArgs{}).ok());
  // Inputs lacking a TID are rejected.
  OpArgs no_tid;
  no_tid.Set(arg::kQuantifier, int64_t{0});
  no_tid.Set(arg::kCols, std::vector<ColumnRef>{ColumnRef{0, 1}});
  no_tid.Set(arg::kPreds, PredSet{});
  PlanPtr heap = h.factory()
                     .Make(op::kAccess, flavor::kHeap, {}, std::move(no_tid))
                     .ValueOrDie();
  EXPECT_FALSE(h.factory().Make(op::kTidAnd, "", {heap, region}, OpArgs{})
                   .ok());
}

}  // namespace
}  // namespace starburst
