// Unit tests for the SQL front end (lexer + parser).

#include <gtest/gtest.h>

#include "catalog/synthetic.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace starburst {
namespace {

TEST(SqlLexerTest, TokenKinds) {
  auto toks = sql::Tokenize("SELECT a.b, 12 3.5 'str' <= <> != (").ValueOrDie();
  ASSERT_EQ(toks.size(), 11u);  // incl. '(' and kEnd
  EXPECT_TRUE(toks[0].IsKeyword("SELECT"));
  EXPECT_EQ(toks[1].kind, sql::TokenKind::kIdent);
  EXPECT_EQ(toks[1].text, "a.b");
  EXPECT_TRUE(toks[2].IsSymbol(","));
  EXPECT_EQ(toks[3].text, "12");
  EXPECT_EQ(toks[4].text, "3.5");
  EXPECT_EQ(toks[5].kind, sql::TokenKind::kString);
  EXPECT_EQ(toks[5].text, "str");
  EXPECT_TRUE(toks[6].IsSymbol("<="));
  EXPECT_TRUE(toks[7].IsSymbol("<>"));
  EXPECT_TRUE(toks[8].IsSymbol("<>"));  // != normalizes
}

TEST(SqlLexerTest, KeywordsCaseInsensitive) {
  auto toks = sql::Tokenize("select From WHERE and").ValueOrDie();
  EXPECT_TRUE(toks[0].IsKeyword("SELECT"));
  EXPECT_TRUE(toks[1].IsKeyword("FROM"));
  EXPECT_TRUE(toks[2].IsKeyword("WHERE"));
  EXPECT_TRUE(toks[3].IsKeyword("AND"));
}

TEST(SqlLexerTest, Errors) {
  EXPECT_FALSE(sql::Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(sql::Tokenize("SELECT @").ok());
}

class SqlParserTest : public ::testing::Test {
 protected:
  SqlParserTest() : catalog_(MakePaperCatalog()) {}
  Result<Query> Parse(const std::string& sql) {
    return ParseSql(catalog_, sql);
  }
  Catalog catalog_;
};

TEST_F(SqlParserTest, BasicSelect) {
  auto q = Parse("SELECT EMP.NAME FROM EMP");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().num_quantifiers(), 1);
  EXPECT_EQ(q.value().num_predicates(), 0);
  ASSERT_EQ(q.value().select_list().size(), 1u);
}

TEST_F(SqlParserTest, SelectStarExpandsAllColumns) {
  auto q = Parse("SELECT * FROM DEPT, EMP");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().select_list().size(), 4u + 5u);
}

TEST_F(SqlParserTest, AliasesAndSelfJoin) {
  auto q = Parse("SELECT a.NAME, b.NAME FROM EMP a, EMP AS b "
                 "WHERE a.DNO = b.DNO AND a.ENO <> b.ENO");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().num_quantifiers(), 2);
  EXPECT_EQ(q.value().num_predicates(), 2);
  EXPECT_EQ(q.value().quantifier(0).alias, "a");
  EXPECT_EQ(q.value().quantifier(1).alias, "b");
}

TEST_F(SqlParserTest, BareColumnsResolveWhenUnambiguous) {
  auto q = Parse("SELECT NAME FROM EMP WHERE SALARY > 100");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().select_list()[0],
            q.value().ResolveColumn("EMP", "NAME").ValueOrDie());
}

TEST_F(SqlParserTest, ArithmeticAndPrecedence) {
  auto q = Parse("SELECT NAME FROM EMP WHERE SALARY + 2 * ENO >= 100 - 1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const Predicate& p = q.value().predicate(0);
  // lhs = SALARY + (2 * ENO): root is kAdd.
  EXPECT_EQ(p.lhs->kind(), ExprKind::kAdd);
  EXPECT_EQ(p.lhs->rhs()->kind(), ExprKind::kMul);
  EXPECT_EQ(p.op, CompareOp::kGe);
  EXPECT_EQ(p.rhs->kind(), ExprKind::kSub);
}

TEST_F(SqlParserTest, Parentheses) {
  auto q = Parse("SELECT NAME FROM EMP WHERE (SALARY + 2) * ENO = 10");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().predicate(0).lhs->kind(), ExprKind::kMul);
  EXPECT_EQ(q.value().predicate(0).lhs->lhs()->kind(), ExprKind::kAdd);
}

TEST_F(SqlParserTest, OrderByAndSite) {
  PaperCatalogOptions opts;
  opts.distributed = true;
  Catalog cat = MakePaperCatalog(opts);
  auto q = ParseSql(cat,
                    "SELECT EMP.NAME FROM EMP ORDER BY EMP.DNO, EMP.NAME "
                    "AT SITE 'L.A.'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().order_by().size(), 2u);
  ASSERT_TRUE(q.value().required_site().has_value());
  EXPECT_EQ(*q.value().required_site(), cat.FindSite("L.A.").ValueOrDie());
}

TEST_F(SqlParserTest, ErrorCases) {
  EXPECT_FALSE(Parse("SELECT FROM EMP").ok());                 // empty select
  EXPECT_FALSE(Parse("SELECT NAME").ok());                     // no FROM
  EXPECT_FALSE(Parse("SELECT NAME FROM NOPE").ok());           // bad table
  EXPECT_FALSE(Parse("SELECT NOPE FROM EMP").ok());            // bad column
  EXPECT_FALSE(Parse("SELECT NAME FROM EMP WHERE").ok());      // empty where
  EXPECT_FALSE(Parse("SELECT NAME FROM EMP WHERE NAME").ok()); // no compare
  EXPECT_FALSE(Parse("SELECT NAME FROM EMP trailing junk=").ok());
  EXPECT_FALSE(Parse("SELECT NAME FROM EMP WHERE (NAME = 'x'").ok());
  EXPECT_FALSE(Parse("SELECT NAME FROM EMP AT SITE 'Mars'").ok());
  EXPECT_FALSE(Parse("SELECT DNO FROM DEPT, EMP").ok());       // ambiguous
}

TEST_F(SqlParserTest, PredicateQuantifierAnalysis) {
  auto q = Parse("SELECT EMP.NAME FROM DEPT, EMP "
                 "WHERE DEPT.DNO = EMP.DNO AND DEPT.BUDGET > 100");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value().predicate(0).quantifiers.size(), 2);
  EXPECT_EQ(q.value().predicate(1).quantifiers.size(), 1);
  EXPECT_TRUE(q.value().predicate(1).quantifiers.Contains(0));
}

}  // namespace
}  // namespace starburst
