// Round-trip tests for the rule pretty-printer: FormatRules(rules) parses
// back into a rule base with identical optimizer behavior — the invariant
// that makes "edit the live rule base, then persist it" a safe DBC workflow.

#include <gtest/gtest.h>

#include "catalog/synthetic.h"
#include "optimizer/optimizer.h"
#include "plan/explain.h"
#include "sql/parser.h"
#include "star/default_rules.h"
#include "star/dsl_parser.h"
#include "star/dsl_printer.h"

namespace starburst {
namespace {

DefaultRuleOptions Everything() {
  DefaultRuleOptions o;
  o.merge_join = o.hash_join = true;
  o.forced_projection = o.dynamic_index = true;
  o.tid_sort = o.index_and = o.bloomjoin = true;
  return o;
}

TEST(DslPrinterTest, FormatsASimpleStar) {
  auto stars = ParseRules(R"(
    star exclusive Pick(T, P)
      where JP = join_preds(P, T, T)
      alt 'a' where X = union(JP, {}) if nonempty(X):
        Other(T[order = sort_cols(X, T), temp], X)
      alt 'b':
        forall i in indexes_on(T) do IndexAccess(T, P, i)
    end
  )").ValueOrDie();
  auto text = FormatStar(stars[0]);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text.value().find("star exclusive Pick(T, P)"),
            std::string::npos);
  EXPECT_NE(text.value().find("where JP = join_preds(P, T, T)"),
            std::string::npos);
  EXPECT_NE(text.value().find("[order = sort_cols(X, T)][temp]"),
            std::string::npos);
  EXPECT_NE(text.value().find("forall i in indexes_on(T) do"),
            std::string::npos);
  // And it parses back.
  auto reparsed = ParseRules(text.value());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                             << text.value();
  EXPECT_EQ(reparsed.value()[0].alternatives.size(), 2u);
}

TEST(DslPrinterTest, DefaultRuleBaseRoundTripsStructurally) {
  RuleSet rules = DefaultRuleSet(Everything());
  auto text = FormatRules(rules);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  RuleSet reparsed;
  ASSERT_TRUE(LoadRules(&reparsed, text.value()).ok()) << text.value();
  EXPECT_EQ(reparsed.size(), rules.size());
  for (const std::string& name : rules.Names()) {
    const Star& a = *rules.Find(name).ValueOrDie();
    const Star& b = *reparsed.Find(name).ValueOrDie();
    EXPECT_EQ(a.params, b.params) << name;
    EXPECT_EQ(a.exclusive, b.exclusive) << name;
    ASSERT_EQ(a.alternatives.size(), b.alternatives.size()) << name;
    for (size_t i = 0; i < a.alternatives.size(); ++i) {
      EXPECT_EQ(a.alternatives[i].label, b.alternatives[i].label);
      EXPECT_EQ(a.alternatives[i].condition == nullptr,
                b.alternatives[i].condition == nullptr);
    }
  }
}

TEST(DslPrinterTest, RoundTripPreservesOptimizerBehavior) {
  Catalog catalog = MakePaperCatalog();
  Query query = ParseSql(catalog,
                         "SELECT EMP.NAME FROM DEPT, EMP WHERE "
                         "DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO")
                    .ValueOrDie();
  RuleSet original = DefaultRuleSet(Everything());
  RuleSet round_tripped;
  ASSERT_TRUE(
      LoadRules(&round_tripped, FormatRules(original).ValueOrDie()).ok());

  Optimizer a(std::move(original));
  Optimizer b(std::move(round_tripped));
  auto ra = a.Optimize(query).ValueOrDie();
  auto rb = b.Optimize(query).ValueOrDie();
  EXPECT_DOUBLE_EQ(ra.total_cost, rb.total_cost);
  EXPECT_EQ(PlanSignature(*ra.best), PlanSignature(*rb.best));
  EXPECT_EQ(ra.engine_metrics.plans_built, rb.engine_metrics.plans_built);
  EXPECT_EQ(ra.final_plans.size(), rb.final_plans.size());
}

TEST(DslPrinterTest, ShippedRuleFileSurvivesARoundTripToo) {
  RuleSet from_file;
  ASSERT_TRUE(LoadRulesFromFile(&from_file,
                                std::string(STARBURST_RULES_DIR) +
                                    "/default.star")
                  .ok());
  auto text = FormatRules(from_file);
  ASSERT_TRUE(text.ok());
  RuleSet again;
  ASSERT_TRUE(LoadRules(&again, text.value()).ok());
  EXPECT_EQ(again.size(), from_file.size());
}

}  // namespace
}  // namespace starburst
