// Tests for rank-parallel join enumeration: the determinism guarantee
// (identical best-plan cost and shape at any thread count), order-insensitive
// tie-breaking, and concurrent hammering of the shared structures (the
// latter mostly for the TSan CI job to chew on).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "catalog/synthetic.h"
#include "obs/metrics.h"
#include "optimizer/optimizer.h"
#include "plan/explain.h"
#include "sql/parser.h"
#include "test_util.h"

namespace starburst {
namespace {

Catalog ChainCatalog(int n) {
  SyntheticCatalogOptions opts;
  opts.num_tables = n;
  opts.seed = 21;
  return MakeSyntheticCatalog(opts);
}

// All-heap variant for tests that hand-build ACCESS(heap) scans.
Catalog HeapCatalog(int n) {
  SyntheticCatalogOptions opts;
  opts.num_tables = n;
  opts.seed = 21;
  opts.btree_fraction = 0.0;
  return MakeSyntheticCatalog(opts);
}

std::string ChainSql(int n) {
  std::string sql = "SELECT T0.id FROM T0";
  for (int i = 1; i < n; ++i) sql += ", T" + std::to_string(i);
  sql += " WHERE T1.fk0 = T0.id";
  for (int i = 2; i < n; ++i) {
    sql += " AND T" + std::to_string(i) + ".fk0 = T" + std::to_string(i - 1) +
           ".id";
  }
  return sql;
}

// A star query: every satellite joins the hub T0.
std::string StarSql(int n) {
  std::string sql = "SELECT T0.id FROM T0";
  for (int i = 1; i < n; ++i) sql += ", T" + std::to_string(i);
  sql += " WHERE T1.fk0 = T0.id";
  for (int i = 2; i < n; ++i) {
    sql += " AND T" + std::to_string(i) + ".fk0 = T0.id";
  }
  return sql;
}

struct RunOutcome {
  double total_cost = 0.0;
  std::string signature;
  int64_t plans_in_table = 0;
  JoinEnumerator::Stats enumerator_stats;
};

RunOutcome OptimizeAt(const Catalog& cat, const std::string& sql,
                      int threads) {
  Query query = ParseSql(cat, sql).ValueOrDie();
  OptimizerOptions options;
  // These tests assert that the exhaustive DP enumeration is deterministic
  // across thread counts. A budget inherited from STARBURST_MAX_PLANS /
  // STARBURST_DEADLINE_MS would trip at timing-dependent points, so pin the
  // budgets off.
  options.deadline_ms = 0;
  options.max_plans = 0;
  options.max_plan_table_bytes = 0;
  options.num_threads = threads;
  Optimizer optimizer(DefaultRuleSet(), options);
  auto result = optimizer.Optimize(query);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  RunOutcome out;
  out.total_cost = result.value().total_cost;
  out.signature = PlanSignature(*result.value().best);
  out.plans_in_table = result.value().plans_in_table;
  out.enumerator_stats = result.value().enumerator_stats;
  return out;
}

void ExpectSameOutcome(const RunOutcome& a, const RunOutcome& b,
                       const char* label) {
  EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost) << label;
  EXPECT_EQ(a.signature, b.signature) << label;
  EXPECT_EQ(a.plans_in_table, b.plans_in_table) << label;
  EXPECT_EQ(a.enumerator_stats.subsets, b.enumerator_stats.subsets) << label;
  EXPECT_EQ(a.enumerator_stats.splits_considered,
            b.enumerator_stats.splits_considered)
      << label;
  EXPECT_EQ(a.enumerator_stats.joinable_pairs,
            b.enumerator_stats.joinable_pairs)
      << label;
  EXPECT_EQ(a.enumerator_stats.join_root_refs,
            b.enumerator_stats.join_root_refs)
      << label;
}

TEST(ParallelEnumerationTest, ChainQueryIsDeterministicAcrossThreadCounts) {
  Catalog cat = ChainCatalog(8);
  std::string sql = ChainSql(8);
  RunOutcome base = OptimizeAt(cat, sql, 1);
  EXPECT_GT(base.total_cost, 0.0);
  for (int threads : {2, 4, 0 /* hardware concurrency */}) {
    RunOutcome parallel = OptimizeAt(cat, sql, threads);
    ExpectSameOutcome(base, parallel,
                      ("chain, threads=" + std::to_string(threads)).c_str());
  }
}

TEST(ParallelEnumerationTest, StarQueryIsDeterministicAcrossThreadCounts) {
  Catalog cat = ChainCatalog(8);
  std::string sql = StarSql(8);
  RunOutcome base = OptimizeAt(cat, sql, 1);
  for (int threads : {2, 4}) {
    RunOutcome parallel = OptimizeAt(cat, sql, threads);
    ExpectSameOutcome(base, parallel,
                      ("star, threads=" + std::to_string(threads)).c_str());
  }
}

TEST(ParallelEnumerationTest, RepeatedParallelRunsAgree) {
  // Thread scheduling varies run to run; the outcome must not.
  Catalog cat = ChainCatalog(7);
  std::string sql = StarSql(7);
  RunOutcome first = OptimizeAt(cat, sql, 4);
  for (int run = 0; run < 3; ++run) {
    RunOutcome again = OptimizeAt(cat, sql, 4);
    ExpectSameOutcome(first, again, "repeated parallel run");
  }
}

TEST(ParallelEnumerationTest, EnumeratorErrorSurvivesParallelRun) {
  // A query with no tables errors identically at any thread count.
  Catalog cat = ChainCatalog(1);
  Query query(&cat);
  EngineHarness h(query, DefaultRuleSet());
  JoinEnumerator e(&h.engine(), &h.glue(), &h.table(), "JoinRoot", 4);
  EXPECT_FALSE(e.Run().ok());
}

TEST(CheapestPlanTest, TieBreakIsInsensitiveToInsertionOrder) {
  Catalog cat = HeapCatalog(2);
  Query query = ParseSql(cat, ChainSql(2)).ValueOrDie();
  EngineHarness h(query, DefaultRuleSet());

  auto scan = [&](int q) {
    OpArgs args;
    args.Set(arg::kQuantifier, int64_t{q});
    args.Set(arg::kCols, std::vector<ColumnRef>{
                             query.ResolveColumn("T" + std::to_string(q), "id")
                                 .ValueOrDie()});
    return h.factory()
        .Make(op::kAccess, flavor::kHeap, {}, std::move(args))
        .ValueOrDie();
  };
  // Two scans of the same table: equal cost AND equal signature, so the
  // final id tie-break decides. Whatever order they arrive in, the winner
  // must be the same node (the one created first, i.e. the smaller id).
  PlanPtr a = scan(0);
  PlanPtr b = scan(0);
  ASSERT_EQ(h.cost_model().Total(a->props.cost()),
            h.cost_model().Total(b->props.cost()));
  ASSERT_NE(a->id, b->id);
  SAP forward{a, b};
  SAP backward{b, a};
  PlanPtr pick1 = CheapestPlan(forward, h.cost_model());
  PlanPtr pick2 = CheapestPlan(backward, h.cost_model());
  ASSERT_NE(pick1, nullptr);
  EXPECT_EQ(pick1.get(), pick2.get());
  EXPECT_EQ(PlanSignature(*pick1), PlanSignature(*pick2));
}

// --- Concurrency hammers (primarily for the TSan job) ----------------------

TEST(ThreadSafetyTest, PlanTableConcurrentInsertLookup) {
  Catalog cat = HeapCatalog(2);
  Query query = ParseSql(cat, ChainSql(2)).ValueOrDie();
  EngineHarness h(query, DefaultRuleSet());
  PlanTable& table = h.table();

  auto scan = [&](int q) {
    OpArgs args;
    args.Set(arg::kQuantifier, int64_t{q});
    args.Set(arg::kCols, std::vector<ColumnRef>{
                             query.ResolveColumn("T" + std::to_string(q), "id")
                                 .ValueOrDie()});
    return h.factory()
        .Make(op::kAccess, flavor::kHeap, {}, std::move(args))
        .ValueOrDie();
  };

  constexpr int kThreads = 4;
  constexpr int kKeys = 32;
  std::vector<std::thread> pool;
  std::atomic<int> found{0};
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      PlanPtr mine = scan(t % 2);
      for (int i = 0; i < 200; ++i) {
        QuantifierSet key = QuantifierSet::FromMask(
            static_cast<uint64_t>(i % kKeys) + 1);
        table.Insert(key, PredSet{}, mine);
        if (table.Contains(key, PredSet{})) {
          std::optional<SAP> bucket = table.Lookup(key, PredSet{});
          if (bucket.has_value() && !bucket->empty()) {
            found.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(found.load(), kThreads * 200);
  EXPECT_EQ(table.num_buckets(), kKeys);
  EXPECT_GT(table.stats().inserts, 0);
}

TEST(ThreadSafetyTest, PlanFactoryConcurrentIdsAreUnique) {
  Catalog cat = HeapCatalog(2);
  Query query = ParseSql(cat, ChainSql(2)).ValueOrDie();
  EngineHarness h(query, DefaultRuleSet());

  constexpr int kThreads = 4;
  constexpr int kPerThread = 250;
  std::vector<std::vector<int64_t>> ids(kThreads);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        OpArgs args;
        args.Set(arg::kQuantifier, int64_t{0});
        args.Set(arg::kCols,
                 std::vector<ColumnRef>{
                     query.ResolveColumn("T0", "id").ValueOrDie()});
        PlanPtr p = h.factory()
                        .Make(op::kAccess, flavor::kHeap, {}, std::move(args))
                        .ValueOrDie();
        ids[static_cast<size_t>(t)].push_back(p->id);
      }
    });
  }
  for (std::thread& t : pool) t.join();

  std::vector<int64_t> all;
  for (const auto& v : ids) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end())
      << "duplicate plan ids under concurrent construction";
  EXPECT_EQ(h.factory().nodes_created(), kThreads * kPerThread);
}

TEST(ThreadSafetyTest, MetricsRegistryConcurrentWriters) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        registry.AddCounter("hammer.counter", 1);
        registry.SetGauge("hammer.gauge", static_cast<double>(i));
        registry.RecordLatency("hammer.latency", static_cast<double>(i));
        if (i % 64 == 0) (void)registry.TakeSnapshot();
      }
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(registry.counter("hammer.counter"), kThreads * kPerThread);
  MetricsRegistry::Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.histograms.at("hammer.latency").count,
            kThreads * kPerThread);
}

}  // namespace
}  // namespace starburst
