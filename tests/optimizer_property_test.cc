// Property-based tests over the whole optimizer, parameterized across seeds,
// table counts, and rule repertoires:
//
//   1. semantic equivalence: every plan in the final SAP executes to the
//      same result multiset (paper §2.2);
//   2. the winner is the argmin of the Pareto frontier;
//   3. a naive evaluation oracle agrees with the chosen plan;
//   4. widening the repertoire (more join methods, composite inners) never
//      raises the best cost (the paper's "a cheaper plan is more likely to
//      be discovered among this expanded repertoire", §2.3).

#include <gtest/gtest.h>

#include "catalog/synthetic.h"
#include "exec/evaluator.h"
#include "optimizer/optimizer.h"
#include "plan/explain.h"
#include "sql/parser.h"
#include "star/default_rules.h"
#include "storage/datagen.h"

namespace starburst {
namespace {

struct SweepCase {
  int num_tables;
  uint64_t seed;
  bool order_by;
};

// These tests assert properties of the *exhaustive* DP enumeration (the
// oracle agrees, widening never costs more, ...), which the greedy fallback
// deliberately trades away. Pin the budgets off so an inherited
// STARBURST_MAX_PLANS / STARBURST_DEADLINE_MS (the CI low-budget job) cannot
// degrade these runs.
OptimizerOptions Exhaustive(OptimizerOptions opts = OptimizerOptions{}) {
  opts.deadline_ms = 0;
  opts.max_plans = 0;
  opts.max_plan_table_bytes = 0;
  return opts;
}

std::string ChainSql(int n, bool order_by) {
  std::string sql = "SELECT T0.id FROM T0";
  for (int i = 1; i < n; ++i) sql += ", T" + std::to_string(i);
  sql += " WHERE T0.c0 <= 2";
  for (int i = 1; i < n; ++i) {
    sql += " AND T" + std::to_string(i) + ".fk0 = T" + std::to_string(i - 1) +
           (i == 1 ? ".id" : ".id");
  }
  if (order_by) sql += " ORDER BY T0.id";
  return sql;
}

class OptimizerSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  void SetUp() override {
    SweepCase c = GetParam();
    SyntheticCatalogOptions opts;
    opts.num_tables = c.num_tables;
    opts.min_rows = 100;
    opts.max_rows = 1500;
    opts.seed = c.seed;
    catalog_ = MakeSyntheticCatalog(opts);
    db_ = std::make_unique<Database>(catalog_);
    ASSERT_TRUE(PopulateDatabase(db_.get(), c.seed + 1, 0.12).ok());
    auto q = ParseSql(catalog_, ChainSql(c.num_tables, c.order_by));
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    query_ = std::make_unique<Query>(std::move(q).value());
  }

  Catalog catalog_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<Query> query_;
};

TEST_P(OptimizerSweep, AllFinalPlansAgreeAndBestIsCheapest) {
  DefaultRuleOptions rule_opts;
  rule_opts.merge_join = true;
  rule_opts.hash_join = true;
  rule_opts.dynamic_index = GetParam().num_tables <= 3;
  Optimizer opt(DefaultRuleSet(rule_opts), Exhaustive());
  auto result = opt.Optimize(*query_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const OptimizeResult& r = result.value();
  ASSERT_GE(r.final_plans.size(), 1u);

  // Winner is the argmin.
  for (const PlanPtr& p : r.final_plans) {
    EXPECT_LE(r.total_cost, TotalCost(p->props.cost()) + 1e-9);
  }

  // Order requirement honored by every survivor.
  for (const PlanPtr& p : r.final_plans) {
    EXPECT_TRUE(OrderSatisfies(p->props.order(), query_->order_by()));
  }

  // Semantic equivalence of the entire frontier.
  auto reference = ExecutePlan(*db_, *query_, r.final_plans[0]);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  for (size_t i = 1; i < r.final_plans.size(); ++i) {
    auto rs = ExecutePlan(*db_, *query_, r.final_plans[i]);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString() << "\n"
                         << ExplainPlan(*r.final_plans[i], *query_);
    auto same =
        SameResult(reference.value(), rs.value(), query_->select_list());
    ASSERT_TRUE(same.ok());
    EXPECT_TRUE(same.value()) << ExplainPlan(*r.final_plans[i], *query_);
  }

  // Executed order matches the ORDER BY.
  if (!query_->order_by().empty()) {
    auto rs = ExecutePlan(*db_, *query_, r.best);
    ASSERT_TRUE(rs.ok());
    EXPECT_TRUE(IsSorted(rs.value(), query_->order_by()).ValueOrDie());
  }
}

TEST_P(OptimizerSweep, NaiveOracleAgreesOnSmallQueries) {
  if (GetParam().num_tables > 3) GTEST_SKIP() << "oracle too slow";
  Optimizer opt(DefaultRuleSet(), Exhaustive());
  auto result = opt.Optimize(*query_);
  ASSERT_TRUE(result.ok());
  auto rs = ExecutePlan(*db_, *query_, result.value().best);
  ASSERT_TRUE(rs.ok());

  // Naive oracle: full cartesian product, evaluate every predicate.
  const int n = query_->num_quantifiers();
  std::vector<const StoredTable*> tables;
  for (int q = 0; q < n; ++q) {
    tables.push_back(&db_->table(query_->quantifier(q).table));
  }
  int64_t expected = 0;
  std::vector<const Tuple*> current(static_cast<size_t>(n));
  std::function<void(int)> rec = [&](int q) {
    if (q == n) {
      for (int id = 0; id < query_->num_predicates(); ++id) {
        const Predicate& p = query_->predicate(id);
        // Only bare-column / literal predicates occur in ChainSql.
        auto value = [&](const ExprPtr& e) {
          if (e->kind() == ExprKind::kLiteral) return e->literal();
          const ColumnRef& c = e->column();
          return (*current[static_cast<size_t>(c.quantifier)])
              [static_cast<size_t>(c.column)];
        };
        if (!EvalCompare(p.op, value(p.lhs), value(p.rhs))) return;
      }
      ++expected;
      return;
    }
    for (const Tuple& t : tables[static_cast<size_t>(q)]->rows()) {
      current[static_cast<size_t>(q)] = &t;
      rec(q + 1);
    }
  };
  rec(0);
  EXPECT_EQ(static_cast<int64_t>(rs.value().rows.size()), expected);
}

TEST_P(OptimizerSweep, WiderRepertoireNeverCostsMore) {
  DefaultRuleOptions narrow;  // NL + MG only
  DefaultRuleOptions wide;
  wide.merge_join = true;
  wide.hash_join = true;
  wide.forced_projection = true;
  wide.dynamic_index = true;

  Optimizer opt_narrow(DefaultRuleSet(narrow), Exhaustive());
  Optimizer opt_wide(DefaultRuleSet(wide), Exhaustive());
  auto narrow_r = opt_narrow.Optimize(*query_);
  auto wide_r = opt_wide.Optimize(*query_);
  ASSERT_TRUE(narrow_r.ok()) << narrow_r.status().ToString();
  ASSERT_TRUE(wide_r.ok()) << wide_r.status().ToString();
  EXPECT_LE(wide_r.value().total_cost, narrow_r.value().total_cost + 1e-9);
}

TEST_P(OptimizerSweep, CompositeInnersOnlyWiden) {
  OptimizerOptions with;
  with.engine.allow_composite_inner = true;
  OptimizerOptions without;
  without.engine.allow_composite_inner = false;

  Optimizer opt_with(DefaultRuleSet(), Exhaustive(with));
  Optimizer opt_without(DefaultRuleSet(), Exhaustive(without));
  auto r_with = opt_with.Optimize(*query_);
  auto r_without = opt_without.Optimize(*query_);
  ASSERT_TRUE(r_with.ok());
  ASSERT_TRUE(r_without.ok());
  EXPECT_LE(r_with.value().total_cost, r_without.value().total_cost + 1e-9);
  EXPECT_GE(r_with.value().enumerator_stats.joinable_pairs,
            r_without.value().enumerator_stats.joinable_pairs);
}

TEST_P(OptimizerSweep, CheapestOnlyGlueStillProducesAValidPlan) {
  OptimizerOptions all;
  OptimizerOptions cheapest;
  cheapest.engine.glue_return_all = false;

  Optimizer opt_all(DefaultRuleSet(), Exhaustive(all));
  Optimizer opt_cheapest(DefaultRuleSet(), Exhaustive(cheapest));
  auto r_all = opt_all.Optimize(*query_);
  auto r_cheapest = opt_cheapest.Optimize(*query_);
  ASSERT_TRUE(r_all.ok());
  ASSERT_TRUE(r_cheapest.ok());
  // Keeping only the cheapest satisfying plan per Glue call can lose the
  // globally best combination, never gain one.
  EXPECT_LE(r_all.value().total_cost, r_cheapest.value().total_cost + 1e-9);
  // And it must still be semantically correct.
  auto rs_a = ExecutePlan(*db_, *query_, r_all.value().best);
  auto rs_c = ExecutePlan(*db_, *query_, r_cheapest.value().best);
  ASSERT_TRUE(rs_a.ok());
  ASSERT_TRUE(rs_c.ok());
  EXPECT_TRUE(
      SameResult(rs_a.value(), rs_c.value(), query_->select_list())
          .ValueOrDie());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OptimizerSweep,
    ::testing::Values(SweepCase{2, 11, false}, SweepCase{2, 12, true},
                      SweepCase{3, 13, false}, SweepCase{3, 14, true},
                      SweepCase{4, 15, false}, SweepCase{4, 16, true},
                      SweepCase{5, 17, false}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return "t" + std::to_string(info.param.num_tables) + "_s" +
             std::to_string(info.param.seed) +
             (info.param.order_by ? "_ord" : "");
    });

TEST(CartesianProductTest, DisconnectedQueryNeedsCartesianOption) {
  SyntheticCatalogOptions copts;
  copts.num_tables = 2;
  copts.min_rows = 50;
  copts.max_rows = 100;
  Catalog catalog = MakeSyntheticCatalog(copts);
  // No join predicate between T0 and T1.
  Query query =
      ParseSql(catalog, "SELECT T0.id FROM T0, T1 WHERE T0.c0 = 1")
          .ValueOrDie();

  Optimizer no_cartesian(DefaultRuleSet());
  EXPECT_FALSE(no_cartesian.Optimize(query).ok());

  OptimizerOptions opts;
  opts.engine.allow_cartesian = true;
  Optimizer with_cartesian(DefaultRuleSet(), Exhaustive(opts));
  auto r = with_cartesian.Optimize(query);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_NE(r.value().best, nullptr);
}

TEST(SelfJoinTest, SameTableTwiceOptimizesAndRuns) {
  Catalog catalog = MakePaperCatalog();
  Database db(catalog);
  ASSERT_TRUE(PopulatePaperDatabase(&db, 3, 0.01).ok());
  Query query = ParseSql(catalog,
                         "SELECT a.NAME, b.NAME FROM EMP a, EMP b WHERE "
                         "a.DNO = b.DNO AND a.ENO <> b.ENO AND a.SALARY > "
                         "400000")
                    .ValueOrDie();
  DefaultRuleOptions rule_opts;
  rule_opts.hash_join = true;
  Optimizer opt(DefaultRuleSet(rule_opts));
  auto result = opt.Optimize(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto rs = ExecutePlan(db, query, result.value().best);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  // Oracle: symmetric pairs.
  const StoredTable& emp = *db.FindTable("EMP").ValueOrDie();
  int64_t expected = 0;
  for (const Tuple& a : emp.rows()) {
    if (a[4].AsInt() <= 400000) continue;
    for (const Tuple& b : emp.rows()) {
      if (a[1].Compare(b[1]) == 0 && a[0].Compare(b[0]) != 0) ++expected;
    }
  }
  EXPECT_EQ(static_cast<int64_t>(rs.value().rows.size()), expected);
}

}  // namespace
}  // namespace starburst
