// The differential concurrency suite for the query-serving front end
// (src/server/): any interleaving of K sessions x M statements must yield
// results and plan signatures bit-identical to running the same statements
// sequentially with the plan cache off. Around that core: deterministic
// cache hit/miss/invalidation counters, single-flight under an 8-thread
// hammer, cancellation/deadline residue checks, a fault sweep over every
// registered site through the server path, normalization/digest properties
// of the cache key, generation-based invalidation, prepared statements, and
// admission control.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "catalog/synthetic.h"
#include "common/fault_injector.h"
#include "exec/evaluator.h"
#include "exec/spill_file.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "optimizer/optimizer.h"
#include "plan/explain.h"
#include "server/plan_cache.h"
#include "server/server.h"
#include "server/session.h"
#include "sql/parser.h"
#include "star/default_rules.h"
#include "storage/datagen.h"

namespace starburst {
namespace {

// ---------------------------------------------------------------------------
// Shared fixture: the paper schema populated deterministically, plus server
// factories. Optimizer budgets are pinned off (as in parallel_test.cc) so
// the differential assertions can't trip on timing-dependent degradation;
// everything else inherits the environment, which is exactly what the CI
// legs vary (STARBURST_EXEC_THREADS, STARBURST_VECTORIZED, ...).
// ---------------------------------------------------------------------------

class ServerTest : public ::testing::Test {
 protected:
  ServerTest() : catalog_(MakePaperCatalog()), db_(catalog_) {
    Status st = PopulatePaperDatabase(&db_, /*seed=*/7, /*scale=*/0.05);
    EXPECT_TRUE(st.ok()) << st.ToString();
  }

  ServerOptions Pinned(ServerOptions opts) {
    opts.optimizer.deadline_ms = 0;
    opts.optimizer.max_plans = 0;
    opts.optimizer.max_plan_table_bytes = 0;
    return opts;
  }

  std::unique_ptr<SqlServer> MakeServer(ServerOptions opts) {
    return std::make_unique<SqlServer>(&catalog_, &db_, DefaultRuleSet(),
                                       Pinned(opts));
  }

  /// The sequential cache-off oracle configuration.
  std::unique_ptr<SqlServer> MakeOracle() {
    ServerOptions opts;
    opts.num_workers = 0;
    opts.cache_enabled = false;
    return MakeServer(opts);
  }

  Catalog catalog_;
  Database db_;
};

/// Exact bitwise comparison: same schema, same rows, same order.
void ExpectSameRows(const ResultSet& a, const ResultSet& b,
                    const std::string& label) {
  ASSERT_EQ(a.schema, b.schema) << label;
  ASSERT_EQ(a.rows.size(), b.rows.size()) << label;
  for (size_t i = 0; i < a.rows.size(); ++i) {
    ASSERT_EQ(a.rows[i].size(), b.rows[i].size()) << label << " row " << i;
    for (size_t j = 0; j < a.rows[i].size(); ++j) {
      EXPECT_EQ(a.rows[i][j].Compare(b.rows[i][j]), 0)
          << label << " row " << i << " col " << j;
    }
  }
}

/// The differential workload: literal-varied equality statements (which
/// share cache entries — equality selectivity is literal-insensitive, so the
/// cached plan is exactly the plan a fresh optimization would pick) plus
/// fixed multi-table and ORDER BY statements.
std::vector<std::string> Workload(int session, int statements) {
  const std::string base[] = {
      "SELECT EMP.NAME, EMP.ADDRESS FROM DEPT, EMP "
      "WHERE DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO",
      "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = $P",
      "SELECT DEPT.DNAME, DEPT.BUDGET FROM DEPT WHERE DEPT.DNO = $P",
      "SELECT EMP.NAME, EMP.SALARY FROM EMP "
      "WHERE EMP.SALARY >= 100000 ORDER BY EMP.SALARY",
      "SELECT EMP.NAME FROM DEPT, EMP "
      "WHERE DEPT.DNO = EMP.DNO AND DEPT.BUDGET >= 500",
      "SELECT EMP.ENO, EMP.NAME FROM EMP WHERE EMP.ENO = $P",
  };
  std::vector<std::string> out;
  out.reserve(static_cast<size_t>(statements));
  for (int i = 0; i < statements; ++i) {
    std::string sql = base[static_cast<size_t>(i) % std::size(base)];
    size_t p = sql.find("$P");
    if (p != std::string::npos) {
      // Different literal per (session, iteration): same cache entry, and
      // the oracle must agree on every one of them.
      sql.replace(p, 2, std::to_string((session * 7 + i) % 20));
    }
    out.push_back(sql);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Differential harness: K in {1,4,8} sessions x M statements, concurrent
// cache-on runs vs the sequential cache-off oracle, bit-identical.
// ---------------------------------------------------------------------------

struct Observed {
  std::string signature;
  ResultSet rows;
};

TEST_F(ServerTest, DifferentialInterleavingsMatchSequentialOracle) {
  constexpr int kStatements = 12;
  for (int k : {1, 4, 8}) {
    // Oracle first: one session, every statement in order, no cache, no
    // worker threads.
    std::vector<std::vector<Observed>> oracle(static_cast<size_t>(k));
    {
      auto server = MakeOracle();
      SessionPtr session = server->OpenSession().ValueOrDie();
      for (int s = 0; s < k; ++s) {
        for (const std::string& sql : Workload(s, kStatements)) {
          auto result = server->Execute(session, sql);
          ASSERT_TRUE(result.ok()) << sql << ": "
                                   << result.status().ToString();
          oracle[static_cast<size_t>(s)].push_back(
              {result.value().plan_signature,
               std::move(result.value().rows)});
        }
      }
      EXPECT_EQ(server->metrics().counter("server.cache_hits"), 0);
    }
    // Concurrent run: K client threads, each with its own session,
    // submitting its statements in order through the worker pool. The
    // interleaving across sessions is whatever the scheduler produces.
    ServerOptions opts;
    opts.num_workers = k;
    opts.cache_enabled = true;
    auto server = MakeServer(opts);
    std::vector<std::vector<Observed>> got(static_cast<size_t>(k));
    std::vector<std::thread> clients;
    clients.reserve(static_cast<size_t>(k));
    for (int s = 0; s < k; ++s) {
      clients.emplace_back([&, s] {
        SessionPtr session = server->OpenSession().ValueOrDie();
        for (const std::string& sql : Workload(s, kStatements)) {
          auto result = server->Submit(session, sql).get();
          ASSERT_TRUE(result.ok()) << sql << ": "
                                   << result.status().ToString();
          got[static_cast<size_t>(s)].push_back(
              {result.value().plan_signature,
               std::move(result.value().rows)});
        }
      });
    }
    for (std::thread& t : clients) t.join();
    for (int s = 0; s < k; ++s) {
      ASSERT_EQ(got[static_cast<size_t>(s)].size(),
                oracle[static_cast<size_t>(s)].size());
      for (size_t i = 0; i < got[static_cast<size_t>(s)].size(); ++i) {
        std::string label = "k=" + std::to_string(k) + " session " +
                            std::to_string(s) + " stmt " + std::to_string(i);
        EXPECT_EQ(got[static_cast<size_t>(s)][i].signature,
                  oracle[static_cast<size_t>(s)][i].signature)
            << label;
        ExpectSameRows(got[static_cast<size_t>(s)][i].rows,
                       oracle[static_cast<size_t>(s)][i].rows, label);
      }
    }
    // The cache worked: with literal folding, far fewer optimizations than
    // statements.
    int64_t runs = server->metrics().counter("optimizer.runs");
    EXPECT_GE(runs, 1);
    EXPECT_LE(runs, static_cast<int64_t>(6 * k));  // <= distinct shapes
    EXPECT_EQ(server->metrics().counter("server.statements"),
              static_cast<int64_t>(k) * kStatements);
  }
}

// ---------------------------------------------------------------------------
// Deterministic cache-counter schedule (single-threaded, inline).
// ---------------------------------------------------------------------------

TEST_F(ServerTest, CacheCountersOnDeterministicSchedule) {
  ServerOptions opts;
  opts.num_workers = 0;
  auto server = MakeServer(opts);
  SessionPtr session = server->OpenSession().ValueOrDie();
  const std::string a1 = "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = 3";
  const std::string a2 = "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = 11";
  const std::string b =
      "SELECT DEPT.DNAME, DEPT.BUDGET FROM DEPT WHERE DEPT.DNO = 1";
  // Schedule: A(miss) A'(hit: different literal) B(miss) A(hit) B(hit).
  std::string sig_a;
  for (const std::string* sql : {&a1, &a2, &b, &a1, &b}) {
    auto result = server->Execute(session, *sql);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (sql == &a1 && sig_a.empty()) sig_a = result.value().plan_signature;
    if (sql == &a1 || sql == &a2) {
      EXPECT_EQ(result.value().plan_signature, sig_a);
    }
  }
  const MetricsRegistry& m = server->metrics();
  EXPECT_EQ(m.counter("server.cache_misses"), 2);
  EXPECT_EQ(m.counter("server.cache_hits"), 3);
  EXPECT_EQ(m.counter("server.cache_invalidations"), 0);
  EXPECT_EQ(m.counter("server.cache_races"), 0);
  EXPECT_EQ(m.counter("optimizer.runs"), 2);
  EXPECT_EQ(m.counter("server.statements"), 5);
  EXPECT_EQ(server->cache().size(), 2u);
  // Cache off: every statement optimizes.
  ServerOptions off;
  off.num_workers = 0;
  off.cache_enabled = false;
  auto uncached = MakeServer(off);
  SessionPtr s2 = uncached->OpenSession().ValueOrDie();
  for (const std::string* sql : {&a1, &a2, &b, &a1, &b}) {
    ASSERT_TRUE(uncached->Execute(s2, *sql).ok());
  }
  EXPECT_EQ(uncached->metrics().counter("optimizer.runs"), 5);
  EXPECT_EQ(uncached->metrics().counter("server.cache_hits"), 0);
  EXPECT_EQ(uncached->metrics().counter("server.cache_misses"), 0);
}

// ---------------------------------------------------------------------------
// Concurrency soak: single-flight hammer, deterministic at the cache layer
// and end-to-end through the server.
// ---------------------------------------------------------------------------

TEST_F(ServerTest, PlanCacheSingleFlightHammerIsDeterministic) {
  MetricsRegistry metrics;
  PlanCache cache(/*num_shards=*/4, &metrics);
  PlanCacheKey key{"digest", "structure"};
  std::atomic<int> optimize_calls{0};
  // The optimize function holds the flight open until every other thread
  // has registered as a racer, making the hammer schedule deterministic:
  // 1 miss, 7 races, then 7 hits as the waiters drain.
  auto optimize = [&]() -> Result<CachedPlan> {
    optimize_calls.fetch_add(1);
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(30);
    while (metrics.counter("server.cache_races") < 7 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    CachedPlan plan;
    plan.total_cost = 1.0;
    plan.signature = "sig";
    return plan;
  };
  std::vector<std::thread> threads;
  std::vector<std::string> signatures(8);
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&, i] {
      auto got = cache.GetOrOptimize(key, catalog_, optimize);
      ASSERT_TRUE(got.ok());
      signatures[static_cast<size_t>(i)] = got.value()->signature;
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(optimize_calls.load(), 1);
  EXPECT_EQ(metrics.counter("server.cache_misses"), 1);
  EXPECT_EQ(metrics.counter("server.cache_races"), 7);
  EXPECT_EQ(metrics.counter("server.cache_hits"), 7);
  for (const std::string& sig : signatures) EXPECT_EQ(sig, "sig");
}

TEST_F(ServerTest, PlanCacheFailedFlightIsTakenOverNotWedged) {
  MetricsRegistry metrics;
  PlanCache cache(/*num_shards=*/2, &metrics);
  PlanCacheKey key{"d", "s"};
  std::atomic<int> calls{0};
  auto flaky = [&]() -> Result<CachedPlan> {
    if (calls.fetch_add(1) == 0) {
      return Status::Internal("injected fault at engine.expand");
    }
    CachedPlan plan;
    plan.signature = "recovered";
    return plan;
  };
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  std::atomic<int> successes{0};
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      auto got = cache.GetOrOptimize(key, catalog_, flaky);
      if (got.ok()) {
        successes.fetch_add(1);
        EXPECT_EQ(got.value()->signature, "recovered");
      } else {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Exactly one caller saw the injected failure; everyone else either raced
  // behind it and took over, or hit the recovered entry. No hangs.
  EXPECT_EQ(failures.load(), 1);
  EXPECT_EQ(successes.load(), 7);
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(ServerTest, PlanCacheEvictsLeastRecentlyUsedPastCapacity) {
  MetricsRegistry metrics;
  // One shard so the whole capacity is one LRU domain.
  PlanCache cache(/*num_shards=*/1, &metrics, /*max_entries=*/4);
  EXPECT_EQ(cache.capacity(), 4);
  auto key = [](int i) {
    return PlanCacheKey{"d" + std::to_string(i), "s" + std::to_string(i)};
  };
  int optimize_calls = 0;
  auto optimize = [&]() -> Result<CachedPlan> {
    ++optimize_calls;
    CachedPlan plan;
    plan.signature = "sig";
    return plan;
  };
  auto touch = [&](int i) -> bool {
    bool hit = false;
    auto got = cache.GetOrOptimize(key(i), catalog_, optimize, &hit);
    EXPECT_TRUE(got.ok());
    return hit;
  };
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(touch(i));  // fill: 4 misses
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(metrics.counter("server.cache_evictions"), 0);
  // Recency: touch 0 and 2, leaving 1 as the least recently used.
  EXPECT_TRUE(touch(0));
  EXPECT_TRUE(touch(2));
  // Past capacity: 4 evicts 1; then 5 evicts 3 (next-oldest after the hits).
  EXPECT_FALSE(touch(4));
  EXPECT_EQ(metrics.counter("server.cache_evictions"), 1);
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_FALSE(touch(5));
  EXPECT_EQ(metrics.counter("server.cache_evictions"), 2);
  EXPECT_EQ(cache.size(), 4u);
  // Exactly the LRU victims re-optimize; the recently used entries survive.
  EXPECT_TRUE(touch(0));
  EXPECT_TRUE(touch(2));
  EXPECT_TRUE(touch(4));
  EXPECT_TRUE(touch(5));
  int before = optimize_calls;
  EXPECT_FALSE(touch(1));  // evicted first
  EXPECT_EQ(optimize_calls, before + 1);
}

TEST_F(ServerTest, PlanCacheSingleFlightSurvivesCapacityOne) {
  // Capacity 1 is the hardest case: every insert evicts the previous entry,
  // but in-flight markers must never be evicted and single-flight semantics
  // must hold exactly as in the unbounded cache.
  MetricsRegistry metrics;
  PlanCache cache(/*num_shards=*/1, &metrics, /*max_entries=*/1);
  PlanCacheKey key{"digest", "structure"};
  std::atomic<int> optimize_calls{0};
  auto optimize = [&]() -> Result<CachedPlan> {
    optimize_calls.fetch_add(1);
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::seconds(30);
    while (metrics.counter("server.cache_races") < 7 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    CachedPlan plan;
    plan.signature = "sig";
    return plan;
  };
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      auto got = cache.GetOrOptimize(key, catalog_, optimize);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got.value()->signature, "sig");
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(optimize_calls.load(), 1);
  EXPECT_EQ(metrics.counter("server.cache_misses"), 1);
  EXPECT_EQ(metrics.counter("server.cache_evictions"), 0);
  // Churn more keys through the 1-entry cache: each insert evicts the
  // previous completed entry, never wedging and never growing.
  auto plain = [&]() -> Result<CachedPlan> {
    CachedPlan plan;
    plan.signature = "sig";
    return plan;
  };
  for (int i = 0; i < 5; ++i) {
    PlanCacheKey k{"other" + std::to_string(i), "s"};
    ASSERT_TRUE(cache.GetOrOptimize(k, catalog_, plain).ok());
  }
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(metrics.counter("server.cache_evictions"), 5);
}

TEST_F(ServerTest, PlanCacheCapacityZeroNeverEvicts) {
  MetricsRegistry metrics;
  PlanCache cache(/*num_shards=*/4, &metrics, /*max_entries=*/0);
  EXPECT_EQ(cache.capacity(), 0);
  auto plain = [&]() -> Result<CachedPlan> {
    CachedPlan plan;
    plan.signature = "sig";
    return plan;
  };
  for (int i = 0; i < 64; ++i) {
    PlanCacheKey k{"d" + std::to_string(i), "s"};
    ASSERT_TRUE(cache.GetOrOptimize(k, catalog_, plain).ok());
  }
  EXPECT_EQ(cache.size(), 64u);
  EXPECT_EQ(metrics.counter("server.cache_evictions"), 0);
}

TEST_F(ServerTest, ServerHammerSameDigestOptimizesExactlyOnce) {
  ServerOptions opts;
  opts.num_workers = 8;
  auto server = MakeServer(opts);
  const std::string sql =
      "SELECT EMP.NAME, EMP.ADDRESS FROM DEPT, EMP "
      "WHERE DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO";
  std::vector<std::thread> clients;
  std::vector<Observed> results(8);
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&, i] {
      SessionPtr session = server->OpenSession().ValueOrDie();
      auto result = server->Submit(session, sql).get();
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      results[static_cast<size_t>(i)] = {result.value().plan_signature,
                                         std::move(result.value().rows)};
    });
  }
  for (std::thread& t : clients) t.join();
  const MetricsRegistry& m = server->metrics();
  // Single-flight: one optimization ever, no matter the interleaving. The
  // other seven either raced behind the flight or arrived after it landed;
  // both paths count as hits.
  EXPECT_EQ(m.counter("optimizer.runs"), 1);
  EXPECT_EQ(m.counter("server.cache_misses"), 1);
  EXPECT_EQ(m.counter("server.cache_hits"), 7);
  EXPECT_GE(m.counter("server.cache_races"), 0);
  for (int i = 1; i < 8; ++i) {
    EXPECT_EQ(results[static_cast<size_t>(i)].signature,
              results[0].signature);
    ExpectSameRows(results[static_cast<size_t>(i)].rows, results[0].rows,
                   "hammer client " + std::to_string(i));
  }
}

// ---------------------------------------------------------------------------
// Cancellation and deadlines through the server path: deterministic
// pre-cancellation via the session latch, and zero residue either way.
// ---------------------------------------------------------------------------

TEST_F(ServerTest, PreCancelledStatementTripsAndLeavesNoResidue) {
  ServerOptions opts;
  opts.num_workers = 0;
  auto server = MakeServer(opts);
  SessionPtr session = server->OpenSession().ValueOrDie();
  session->collect_profile = true;
  session->exec_mem_limit = 1;  // force spilling so cleanup paths run
  // Cancel with nothing in flight: the latch makes the NEXT statement start
  // pre-cancelled — fully deterministic, no sleeps.
  session->Cancel();
  auto result = server->Execute(
      session,
      "SELECT EMP.NAME, EMP.SALARY FROM EMP "
      "WHERE EMP.SALARY >= 0 ORDER BY EMP.SALARY");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
      << result.status().ToString();
  EXPECT_EQ(session->last_profile().memory().current_bytes(), 0);
  EXPECT_EQ(SpillFile::LiveFiles(), 0);
  // The latch was consumed: the same statement now succeeds.
  auto retry = server->Execute(
      session,
      "SELECT EMP.NAME, EMP.SALARY FROM EMP "
      "WHERE EMP.SALARY >= 0 ORDER BY EMP.SALARY");
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(session->last_profile().memory().current_bytes(), 0);
  EXPECT_EQ(SpillFile::LiveFiles(), 0);
}

TEST_F(ServerTest, MidFlightCancellationLeavesNoResidue) {
  ServerOptions opts;
  opts.num_workers = 1;
  auto server = MakeServer(opts);
  SessionPtr session = server->OpenSession().ValueOrDie();
  session->collect_profile = true;
  session->exec_mem_limit = 1;
  // A large self-join: long enough that a concurrent cancel usually lands
  // mid-execution. Whether it lands in time is scheduling-dependent; the
  // invariants (status code, zero residue) hold either way.
  auto future = server->Submit(
      session,
      "SELECT E1.NAME FROM EMP E1, EMP E2 WHERE E1.SALARY >= E2.SALARY");
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  session->Cancel();
  auto result = future.get();
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled)
        << result.status().ToString();
  }
  EXPECT_EQ(session->last_profile().memory().current_bytes(), 0);
  EXPECT_EQ(SpillFile::LiveFiles(), 0);
  // Consume the latch if the statement finished before the cancel landed,
  // then prove the session still serves.
  (void)server->Execute(session, "SELECT DEPT.DNAME FROM DEPT");
  auto after = server->Execute(session, "SELECT DEPT.DNAME FROM DEPT");
  EXPECT_TRUE(after.ok()) << after.status().ToString();
}

TEST_F(ServerTest, SessionDeadlineTripsAsResourceExhausted) {
  ServerOptions opts;
  opts.num_workers = 0;
  auto server = MakeServer(opts);
  SessionPtr session = server->OpenSession().ValueOrDie();
  session->collect_profile = true;
  session->exec_deadline_ms = 1;
  // ~1000x1000 comparison pairs: reliably past 1ms on any hardware.
  auto result = server->Execute(
      session,
      "SELECT E1.NAME FROM EMP E1, EMP E2 WHERE E1.SALARY >= E2.SALARY");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status().ToString();
  EXPECT_EQ(session->last_profile().memory().current_bytes(), 0);
  EXPECT_EQ(SpillFile::LiveFiles(), 0);
  // Budgets are per-session: an unbudgeted session runs the same statement.
  SessionPtr other = server->OpenSession().ValueOrDie();
  auto fine = server->Execute(
      other, "SELECT E1.NAME FROM EMP E1, EMP E2 WHERE E1.ENO = E2.ENO");
  EXPECT_TRUE(fine.ok()) << fine.status().ToString();
}

// ---------------------------------------------------------------------------
// Fault sweep: every registered site, injected on its first hit, through
// the full server path. A failure must be clean (no crash, no wedged cache,
// no leaked temps) and the next attempt must succeed and match the oracle.
// ---------------------------------------------------------------------------

class GlobalFaultGuard {
 public:
  ~GlobalFaultGuard() { (void)FaultInjector::Global()->Configure("off"); }
};

TEST_F(ServerTest, FaultSweepAllSitesThroughServerPath) {
  GlobalFaultGuard guard;
  // Oracle rows for the statement the sweep runs, from a clean server.
  const std::string sql =
      "SELECT EMP.NAME, EMP.SALARY FROM DEPT, EMP "
      "WHERE DEPT.MGR = 'Haas' AND DEPT.DNO = EMP.DNO "
      "ORDER BY EMP.SALARY";
  ResultSet expected;
  {
    auto clean = MakeOracle();
    SessionPtr session = clean->OpenSession().ValueOrDie();
    auto result = clean->Execute(session, sql);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    expected = std::move(result.value().rows);
  }
  for (const std::string& site : KnownFaultSites()) {
    ASSERT_TRUE(FaultInjector::Global()->Configure(site + "=1").ok()) << site;
    ServerOptions opts;
    opts.num_workers = 0;
    opts.faults = FaultInjector::Global();
    auto server = MakeServer(opts);
    SessionPtr session = server->OpenSession().ValueOrDie();
    session->collect_profile = true;
    session->exec_mem_limit = 1;  // spill on every blocking op: reaches the
                                  // exec.spill.* sites
    auto first = server->Execute(session, sql);
    if (!first.ok()) {
      EXPECT_EQ(first.status().code(), StatusCode::kInternal) << site;
      EXPECT_NE(first.status().ToString().find("injected fault"),
                std::string::npos)
          << site << ": " << first.status().ToString();
    }
    // Clean failure: no residue, and the single-flight marker was released
    // so the retry re-optimizes instead of hanging.
    EXPECT_EQ(session->last_profile().memory().current_bytes(), 0) << site;
    EXPECT_EQ(SpillFile::LiveFiles(), 0) << site;
    auto second = server->Execute(session, sql);
    ASSERT_TRUE(second.ok())
        << site << ": " << second.status().ToString();
    ExpectSameRows(second.value().rows, expected, "after fault at " + site);
    ASSERT_TRUE(FaultInjector::Global()->Configure("off").ok());
  }
}

// ---------------------------------------------------------------------------
// Normalization / digest / key properties.
// ---------------------------------------------------------------------------

class PlanCacheKeyTest : public ::testing::Test {
 protected:
  PlanCacheKeyTest() : catalog_(MakePaperCatalog()) {}

  PlanCacheKey KeyOf(const std::string& sql) {
    auto query = ParseSql(catalog_, sql);
    EXPECT_TRUE(query.ok()) << sql << ": " << query.status().ToString();
    return PlanCacheKeyForQuery(query.value());
  }

  Catalog catalog_;
};

TEST_F(PlanCacheKeyTest, LiteralDifferingStatementsFoldToOneEntry) {
  EXPECT_EQ(KeyOf("SELECT EMP.NAME FROM EMP WHERE EMP.DNO = 3"),
            KeyOf("SELECT EMP.NAME FROM EMP WHERE EMP.DNO = 17"));
  EXPECT_EQ(KeyOf("SELECT EMP.NAME FROM EMP WHERE EMP.SALARY >= 100000"),
            KeyOf("SELECT EMP.NAME FROM EMP WHERE EMP.SALARY >= 1"));
  EXPECT_EQ(KeyOf("SELECT DEPT.DNAME FROM DEPT WHERE DEPT.MGR = 'Haas'"),
            KeyOf("SELECT DEPT.DNAME FROM DEPT WHERE DEPT.MGR = 'Smith'"));
}

TEST_F(PlanCacheKeyTest, AliasRenamingIsKeyInvariant) {
  EXPECT_EQ(KeyOf("SELECT E.NAME FROM EMP E WHERE E.DNO = 3"),
            KeyOf("SELECT X.NAME FROM EMP X WHERE X.DNO = 3"));
  EXPECT_EQ(KeyOf("SELECT EMP.NAME FROM EMP WHERE EMP.DNO = 3"),
            KeyOf("SELECT E.NAME FROM EMP AS E WHERE E.DNO = 3"));
}

TEST_F(PlanCacheKeyTest, SymmetricPredicateSideOrderIsKeyInvariant) {
  PlanCacheKey ab = KeyOf(
      "SELECT EMP.NAME FROM DEPT, EMP WHERE DEPT.DNO = EMP.DNO");
  PlanCacheKey ba = KeyOf(
      "SELECT EMP.NAME FROM DEPT, EMP WHERE EMP.DNO = DEPT.DNO");
  EXPECT_EQ(ab.digest, ba.digest);
  EXPECT_EQ(ab.structure, ba.structure);
  // <> is symmetric too...
  EXPECT_EQ(KeyOf("SELECT EMP.NAME FROM DEPT, EMP WHERE DEPT.DNO <> EMP.DNO"),
            KeyOf("SELECT EMP.NAME FROM DEPT, EMP WHERE EMP.DNO <> DEPT.DNO"));
  // ...but < is not: the mirrored statement is a different comparison.
  EXPECT_NE(
      KeyOf("SELECT EMP.NAME FROM DEPT, EMP WHERE DEPT.DNO < EMP.DNO")
          .structure,
      KeyOf("SELECT EMP.NAME FROM DEPT, EMP WHERE EMP.DNO < DEPT.DNO")
          .structure);
}

TEST_F(PlanCacheKeyTest, DistinctShapesNeverCollide) {
  // A no-collision sweep in the spirit of memo_test.cc: every structurally
  // distinct statement must key differently, including the near-miss pairs
  // a sloppy normalizer would alias.
  std::vector<std::string> statements = {
      "SELECT EMP.NAME FROM EMP",
      "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = 1",
      "SELECT EMP.NAME FROM EMP WHERE EMP.DNO <> 1",
      "SELECT EMP.NAME FROM EMP WHERE EMP.DNO < 1",
      "SELECT EMP.NAME FROM EMP WHERE EMP.DNO <= 1",
      "SELECT EMP.NAME FROM EMP WHERE EMP.DNO > 1",
      "SELECT EMP.NAME FROM EMP WHERE EMP.DNO >= 1",
      "SELECT EMP.NAME FROM EMP WHERE EMP.SALARY = 1",
      "SELECT EMP.SALARY FROM EMP WHERE EMP.DNO = 1",
      "SELECT EMP.NAME, EMP.SALARY FROM EMP WHERE EMP.DNO = 1",
      "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = 1 AND EMP.SALARY >= 2",
      "SELECT EMP.NAME FROM EMP WHERE EMP.SALARY >= 2 AND EMP.DNO = 1",
      "SELECT EMP.NAME FROM EMP WHERE EMP.DNO + 1 = 2",
      "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = 1 ORDER BY EMP.NAME",
      "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = 1 ORDER BY EMP.SALARY",
      "SELECT DEPT.DNAME FROM DEPT",
      "SELECT DEPT.DNAME FROM DEPT, EMP WHERE DEPT.DNO = EMP.DNO",
      "SELECT E1.NAME FROM EMP E1, EMP E2 WHERE E1.ENO = E2.ENO",
      "SELECT E1.NAME FROM EMP E1, DEPT WHERE E1.DNO = DEPT.DNO",
  };
  std::set<PlanCacheKey> keys;
  for (const std::string& sql : statements) {
    PlanCacheKey key = KeyOf(sql);
    EXPECT_TRUE(keys.insert(key).second)
        << "collision: " << sql << " -> {" << key.digest << ", "
        << key.structure << "}";
  }
}

TEST_F(PlanCacheKeyTest, PreparedBindingNeverAliasesDistinctShapes) {
  // Binding parameters must land a prepared statement on exactly the key of
  // its ad-hoc literal twin — and never on any other template's key, even
  // for adversarial string parameters that LOOK like SQL (they stay data:
  // binding is in the expression tree, not the text).
  auto bound_key = [&](const std::string& tmpl, std::vector<Datum> params) {
    auto query = BindSql(catalog_, tmpl, params);
    EXPECT_TRUE(query.ok()) << tmpl << ": " << query.status().ToString();
    return PlanCacheKeyForQuery(query.value());
  };
  EXPECT_EQ(bound_key("SELECT EMP.NAME FROM EMP WHERE EMP.DNO = ?",
                      {Datum(int64_t{3})}),
            KeyOf("SELECT EMP.NAME FROM EMP WHERE EMP.DNO = 3"));
  EXPECT_EQ(bound_key("SELECT DEPT.DNAME FROM DEPT WHERE DEPT.MGR = ?",
                      {Datum(std::string("Haas"))}),
            KeyOf("SELECT DEPT.DNAME FROM DEPT WHERE DEPT.MGR = 'Haas'"));
  // The injection probe: the parameter value contains operator characters;
  // the statement shape must not change.
  EXPECT_EQ(bound_key("SELECT DEPT.DNAME FROM DEPT WHERE DEPT.MGR = ?",
                      {Datum(std::string("x' OR '1'='1"))}),
            KeyOf("SELECT DEPT.DNAME FROM DEPT WHERE DEPT.MGR = 'anything'"));
  // Distinct templates stay distinct under binding.
  std::set<PlanCacheKey> keys;
  EXPECT_TRUE(keys.insert(bound_key(
      "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = ?",
      {Datum(int64_t{1})})).second);
  EXPECT_TRUE(keys.insert(bound_key(
      "SELECT EMP.NAME FROM EMP WHERE EMP.DNO <= ?",
      {Datum(int64_t{1})})).second);
  EXPECT_TRUE(keys.insert(bound_key(
      "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = ? AND EMP.SALARY >= ?",
      {Datum(int64_t{1}), Datum(int64_t{2})})).second);
  EXPECT_TRUE(keys.insert(bound_key(
      "SELECT EMP.SALARY FROM EMP WHERE EMP.DNO = ?",
      {Datum(int64_t{1})})).second);
}

TEST_F(PlanCacheKeyTest, ParameterMarkerArityAndModeErrors) {
  // Plain ParseSql rejects markers.
  auto plain = ParseSql(catalog_, "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = ?");
  ASSERT_FALSE(plain.ok());
  EXPECT_EQ(plain.status().code(), StatusCode::kParseError);
  // Template mode counts them.
  int n = -1;
  auto tmpl = ParseSqlTemplate(
      catalog_,
      "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = ? AND EMP.SALARY >= ?", &n);
  ASSERT_TRUE(tmpl.ok()) << tmpl.status().ToString();
  EXPECT_EQ(n, 2);
  // Binding checks arity both ways.
  EXPECT_FALSE(BindSql(catalog_,
                       "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = ?",
                       {Datum(int64_t{1}), Datum(int64_t{2})})
                   .ok());
  EXPECT_FALSE(BindSql(catalog_,
                       "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = ? "
                       "AND EMP.SALARY >= ?",
                       {Datum(int64_t{1})})
                   .ok());
}

// ---------------------------------------------------------------------------
// Generation-based invalidation.
// ---------------------------------------------------------------------------

TEST_F(ServerTest, StatisticsGenerationBumpEvictsAndReoptimizes) {
  ServerOptions opts;
  opts.num_workers = 0;
  auto server = MakeServer(opts);
  SessionPtr session = server->OpenSession().ValueOrDie();
  const std::string sql = "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = 3";
  ASSERT_TRUE(server->Execute(session, sql).ok());
  EXPECT_EQ(server->metrics().counter("optimizer.runs"), 1);
  ASSERT_TRUE(server->Execute(session, sql).ok());
  EXPECT_EQ(server->metrics().counter("server.cache_hits"), 1);
  // RUNSTATS lands: statistics change and the catalog announces it.
  TableId emp = catalog_.FindTable("EMP").ValueOrDie();
  catalog_.mutable_table(emp).row_count *= 2;
  catalog_.NoteStatisticsUpdate();
  ASSERT_TRUE(server->Execute(session, sql).ok());
  const MetricsRegistry& m = server->metrics();
  EXPECT_EQ(m.counter("server.cache_invalidations"), 1);
  EXPECT_EQ(m.counter("server.cache_misses"), 2);
  EXPECT_EQ(m.counter("optimizer.runs"), 2);  // re-optimized, not reused
  // Put the statistics back so other tests see the seed catalog.
  catalog_.mutable_table(emp).row_count /= 2;
  catalog_.NoteStatisticsUpdate();
}

TEST_F(ServerTest, DdlGenerationBumpEvictsDependentEntries) {
  ServerOptions opts;
  opts.num_workers = 0;
  auto server = MakeServer(opts);
  SessionPtr session = server->OpenSession().ValueOrDie();
  const std::string a = "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = 3";
  const std::string b = "SELECT DEPT.DNAME FROM DEPT WHERE DEPT.DNO = 1";
  ASSERT_TRUE(server->Execute(session, a).ok());
  ASSERT_TRUE(server->Execute(session, b).ok());
  EXPECT_EQ(server->cache().size(), 2u);
  int64_t before = catalog_.ddl_generation();
  catalog_.AddSite("archive");  // DDL: every cached plan is now suspect
  EXPECT_GT(catalog_.ddl_generation(), before);
  // Stale entries are never executed: both next runs re-optimize against
  // the new catalog.
  ASSERT_TRUE(server->Execute(session, a).ok());
  ASSERT_TRUE(server->Execute(session, b).ok());
  const MetricsRegistry& m = server->metrics();
  EXPECT_EQ(m.counter("server.cache_invalidations"), 2);
  EXPECT_EQ(m.counter("optimizer.runs"), 4);
  EXPECT_EQ(m.counter("server.cache_hits"), 0);
}

TEST_F(ServerTest, QErrorTripInvalidatesForReoptimization) {
  ServerOptions opts;
  opts.num_workers = 0;
  opts.qerror_reoptimize_threshold = 5.0;
  auto server = MakeServer(opts);
  SessionPtr session = server->OpenSession().ValueOrDie();
  // The catalog claims 20000 EMP rows; the database is populated at scale
  // 0.05 (1000 rows), so a full scan misestimates by ~20x — deterministic
  // q-error far above the threshold.
  const std::string sql = "SELECT EMP.NAME FROM EMP";
  auto first = server->Execute(session, sql);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_GT(first.value().worst_q_error, 5.0);
  EXPECT_TRUE(first.value().reoptimize_scheduled);
  const MetricsRegistry& m = server->metrics();
  EXPECT_EQ(m.counter("server.reoptimizations"), 1);
  EXPECT_EQ(m.counter("server.cache_invalidations"), 1);
  EXPECT_EQ(server->cache().size(), 0u);
  // The next execution re-optimizes (the entry was dropped)...
  auto second = server->Execute(session, sql);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value().cache_hit);
  EXPECT_EQ(m.counter("optimizer.runs"), 2);
  // ...and results are identical regardless.
  ExpectSameRows(first.value().rows, second.value().rows, "qerror reopt");
}

// ---------------------------------------------------------------------------
// Prepared statements through the server.
// ---------------------------------------------------------------------------

TEST_F(ServerTest, PreparedStatementsBindAndShareTheCacheWithAdHoc) {
  ServerOptions opts;
  opts.num_workers = 0;
  auto server = MakeServer(opts);
  SessionPtr session = server->OpenSession().ValueOrDie();
  ASSERT_TRUE(server
                  ->Prepare(session, "by_dno",
                            "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = ?")
                  .ok());
  // Ad-hoc twin first: the prepared execution must HIT its entry.
  auto adhoc =
      server->Execute(session, "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = 3");
  ASSERT_TRUE(adhoc.ok());
  auto prepared =
      server->ExecutePrepared(session, "by_dno", {Datum(int64_t{3})});
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_TRUE(prepared.value().cache_hit);
  EXPECT_EQ(prepared.value().plan_signature, adhoc.value().plan_signature);
  ExpectSameRows(prepared.value().rows, adhoc.value().rows, "prepared=adhoc");
  // Different parameter: same entry, different rows.
  auto other =
      server->ExecutePrepared(session, "by_dno", {Datum(int64_t{5})});
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE(other.value().cache_hit);
  auto adhoc5 =
      server->Execute(session, "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = 5");
  ASSERT_TRUE(adhoc5.ok());
  ExpectSameRows(other.value().rows, adhoc5.value().rows, "param=5");
  EXPECT_EQ(server->metrics().counter("optimizer.runs"), 1);
  // Errors: unknown name, wrong arity, bad template.
  EXPECT_EQ(server->ExecutePrepared(session, "nope", {}).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(server->ExecutePrepared(session, "by_dno", {}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(server->Prepare(session, "bad", "SELECT FROM WHERE").ok());
  // Session-scoped namespace: a second session can't see it.
  SessionPtr other_session = server->OpenSession().ValueOrDie();
  EXPECT_EQ(server->ExecutePrepared(other_session, "by_dno",
                                    {Datum(int64_t{3})})
                .status()
                .code(),
            StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Admission control and session management.
// ---------------------------------------------------------------------------

TEST_F(ServerTest, AdmissionControlRejectsBeyondQueueBound) {
  ServerOptions opts;
  opts.num_workers = 0;  // nothing drains: the queue fills deterministically
  opts.max_queue = 2;
  std::future<Result<StatementResult>> pending1, pending2;
  {
    auto server = MakeServer(opts);
    SessionPtr session = server->OpenSession().ValueOrDie();
    pending1 = server->Submit(session, "SELECT DEPT.DNAME FROM DEPT");
    pending2 = server->Submit(session, "SELECT DEPT.DNAME FROM DEPT");
    auto rejected = server->Submit(session, "SELECT DEPT.DNAME FROM DEPT");
    auto result = rejected.get();  // resolved immediately, no worker needed
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
        << result.status().ToString();
    EXPECT_EQ(server->metrics().counter("server.admission_rejected"), 1);
  }
  // Shutdown fails queued-but-never-run statements instead of dangling.
  EXPECT_EQ(pending1.get().status().code(), StatusCode::kCancelled);
  EXPECT_EQ(pending2.get().status().code(), StatusCode::kCancelled);
}

TEST_F(ServerTest, SessionLimitIsEnforced) {
  ServerOptions opts;
  opts.num_workers = 0;
  opts.max_sessions = 2;
  auto server = MakeServer(opts);
  SessionPtr s1 = server->OpenSession("alice").ValueOrDie();
  SessionPtr s2 = server->OpenSession("bob").ValueOrDie();
  auto third = server->OpenSession("carol");
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
  server->CloseSession(s1);
  EXPECT_EQ(server->num_sessions(), 1u);
  EXPECT_TRUE(server->OpenSession("carol").ok());
}

// ---------------------------------------------------------------------------
// Per-session and global metrics views.
// ---------------------------------------------------------------------------

TEST_F(ServerTest, PerSessionMetricsMirrorIntoGlobalView) {
  ServerOptions opts;
  opts.num_workers = 0;
  auto server = MakeServer(opts);
  SessionPtr s1 = server->OpenSession("alice").ValueOrDie();
  SessionPtr s2 = server->OpenSession("bob").ValueOrDie();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(server->Execute(s1, "SELECT DEPT.DNAME FROM DEPT").ok());
  }
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(
        server->Execute(s2, "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = 1")
            .ok());
  }
  // Per-session views count only their own statements...
  EXPECT_EQ(s1->metrics().counter("server.statements"), 3);
  EXPECT_EQ(s2->metrics().counter("server.statements"), 2);
  // ...and the global view is their sum, with latency histograms mirrored
  // for global p50/p99.
  EXPECT_EQ(server->metrics().counter("server.statements"), 5);
  const LatencyHistogram* global =
      server->metrics().histogram("server.statement_us");
  ASSERT_NE(global, nullptr);
  EXPECT_EQ(global->count(), 5);
  EXPECT_GT(global->Percentile(0.99), 0.0);
  const LatencyHistogram* mine = s1->metrics().histogram("server.statement_us");
  ASSERT_NE(mine, nullptr);
  EXPECT_EQ(mine->count(), 3);
  // The QPS gauge is global-only (gauges don't mirror — they'd stomp).
  EXPECT_GT(server->metrics().gauge("server.qps"), 0.0);
  EXPECT_EQ(s1->metrics().gauge("server.qps"), 0.0);
  // Prometheus export of the global registry includes the server family.
  std::string prom = server->metrics().TakeSnapshot().ToPrometheus();
  EXPECT_NE(prom.find("server_statements"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Catalog generation plumbing (unit).
// ---------------------------------------------------------------------------

TEST(CatalogGenerationTest, DdlAndStatsGenerationsAdvanceIndependently) {
  Catalog catalog;
  int64_t ddl0 = catalog.ddl_generation();
  int64_t stats0 = catalog.stats_generation();
  catalog.AddSite("remote");
  EXPECT_EQ(catalog.ddl_generation(), ddl0 + 1);
  TableDef def;
  def.name = "T";
  def.columns.push_back({"id"});
  ASSERT_TRUE(catalog.AddTable(def).ok());
  EXPECT_EQ(catalog.ddl_generation(), ddl0 + 2);
  IndexDef ix;
  ix.name = "T_ID_IX";
  ix.key_columns = {0};
  ASSERT_TRUE(catalog.AddIndex("T", ix).ok());
  EXPECT_EQ(catalog.ddl_generation(), ddl0 + 3);
  EXPECT_EQ(catalog.stats_generation(), stats0);
  catalog.NoteStatisticsUpdate();
  EXPECT_EQ(catalog.stats_generation(), stats0 + 1);
  EXPECT_EQ(catalog.ddl_generation(), ddl0 + 3);
  // Re-adding an existing site is a lookup, not DDL.
  catalog.AddSite("remote");
  EXPECT_EQ(catalog.ddl_generation(), ddl0 + 3);
  // Copies carry the generations forward.
  Catalog copy = catalog;
  EXPECT_EQ(copy.ddl_generation(), catalog.ddl_generation());
  EXPECT_EQ(copy.stats_generation(), catalog.stats_generation());
}

}  // namespace
}  // namespace starburst
