// Unit tests for selectivity estimation (System-R formulas) and the cost
// model, including parameterized monotonicity sweeps.

#include <gtest/gtest.h>

#include "catalog/synthetic.h"
#include "cost/cost_model.h"
#include "cost/selectivity.h"
#include "sql/parser.h"

namespace starburst {
namespace {

class SelectivityTest : public ::testing::Test {
 protected:
  SelectivityTest() : catalog_(MakePaperCatalog()), query_(&catalog_) {
    dept_ = query_.AddQuantifier("DEPT").ValueOrDie();
    emp_ = query_.AddQuantifier("EMP").ValueOrDie();
  }

  ExprPtr Col(int q, const char* name) {
    const std::string& alias = query_.quantifier(q).alias;
    return Expr::Column(query_.ResolveColumn(alias, name).ValueOrDie());
  }

  double Sel(ExprPtr lhs, CompareOp op, ExprPtr rhs) {
    int id =
        query_.AddPredicate(std::move(lhs), op, std::move(rhs)).ValueOrDie();
    return PredicateSelectivity(query_, query_.predicate(id));
  }

  Catalog catalog_;
  Query query_;
  int dept_, emp_;
};

TEST_F(SelectivityTest, EqualityWithLiteral) {
  // DEPT.DNO has 500 distinct values.
  EXPECT_DOUBLE_EQ(
      Sel(Col(dept_, "DNO"), CompareOp::kEq, Expr::Literal(Datum(int64_t{7}))),
      1.0 / 500.0);
}

TEST_F(SelectivityTest, ColumnEqualsColumnUsesMaxDistinct) {
  // DEPT.DNO (500 distinct) = EMP.DNO (500 distinct).
  EXPECT_DOUBLE_EQ(Sel(Col(dept_, "DNO"), CompareOp::kEq, Col(emp_, "DNO")),
                   1.0 / 500.0);
}

TEST_F(SelectivityTest, NotEqualsIsComplement) {
  double eq = 1.0 / 500.0;
  EXPECT_DOUBLE_EQ(
      Sel(Col(dept_, "DNO"), CompareOp::kNe, Expr::Literal(Datum(int64_t{7}))),
      1.0 - eq);
}

TEST_F(SelectivityTest, RangeInterpolation) {
  // EMP.SALARY ranges 0..500000.
  double sel = Sel(Col(emp_, "SALARY"), CompareOp::kLt,
                   Expr::Literal(Datum(int64_t{250000})));
  EXPECT_NEAR(sel, 0.5, 0.01);
  double sel_flipped = Sel(Expr::Literal(Datum(int64_t{250000})),
                           CompareOp::kLt, Col(emp_, "SALARY"));
  EXPECT_NEAR(sel_flipped, 0.5, 0.01);  // literal < col == col > literal
  double sel_small = Sel(Col(emp_, "SALARY"), CompareOp::kLt,
                         Expr::Literal(Datum(int64_t{50000})));
  EXPECT_NEAR(sel_small, 0.1, 0.01);
}

TEST_F(SelectivityTest, StringRangeFallsBackToDefault) {
  EXPECT_NEAR(Sel(Col(emp_, "NAME"), CompareOp::kGt,
                  Expr::Literal(Datum(std::string("m")))),
              1.0 / 3.0, 1e-9);
}

TEST_F(SelectivityTest, ExpressionEqualityUsesDefault) {
  EXPECT_NEAR(Sel(Expr::Binary(ExprKind::kAdd, Col(dept_, "DNO"),
                               Expr::Literal(Datum(int64_t{1}))),
                  CompareOp::kEq,
                  Expr::Binary(ExprKind::kMul, Col(emp_, "DNO"),
                               Expr::Literal(Datum(int64_t{2})))),
              0.1, 1e-9);
}

TEST_F(SelectivityTest, CombinedIsProductAndExcludesApplied) {
  int p0 = query_
               .AddPredicate(Col(dept_, "DNO"), CompareOp::kEq,
                             Expr::Literal(Datum(int64_t{1})))
               .ValueOrDie();
  int p1 = query_
               .AddPredicate(Col(emp_, "DNO"), CompareOp::kEq,
                             Expr::Literal(Datum(int64_t{1})))
               .ValueOrDie();
  PredSet both = PredSet::Single(p0).Union(PredSet::Single(p1));
  double s0 = PredicateSelectivity(query_, query_.predicate(p0));
  double s1 = PredicateSelectivity(query_, query_.predicate(p1));
  EXPECT_DOUBLE_EQ(CombinedSelectivity(query_, both), s0 * s1);
  EXPECT_DOUBLE_EQ(CombinedSelectivity(query_, both, PredSet::Single(p0)),
                   s1);
  EXPECT_DOUBLE_EQ(CombinedSelectivity(query_, both, both), 1.0);
  EXPECT_DOUBLE_EQ(CombinedSelectivity(query_, PredSet{}), 1.0);
}

// ---------------------------------------------------------------------------
// Cost model.
// ---------------------------------------------------------------------------

TEST(CostTest, Arithmetic) {
  Cost a{1, 2, 3}, b{10, 20, 30};
  Cost c = a + b;
  EXPECT_EQ(c.io, 11);
  EXPECT_EQ(c.cpu, 22);
  EXPECT_EQ(c.comm, 33);
  Cost d = a * 2.0;
  EXPECT_EQ(d.io, 2);
  CostWeights w{1.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(TotalCost(c, w), 11.0);
}

TEST(CostModelTest, PagesForBounds) {
  CostModel cm;
  EXPECT_EQ(cm.PagesFor(0, 100), 0.0);
  EXPECT_EQ(cm.PagesFor(1, 8), 1.0);  // at least one page
  EXPECT_EQ(cm.PagesFor(1024, 8), 2.0);
}

class SortCostSweep : public ::testing::TestWithParam<double> {};

TEST_P(SortCostSweep, MonotoneInRows) {
  CostModel cm;
  double rows = GetParam();
  Cost small = cm.SortCost(rows, 64);
  Cost bigger = cm.SortCost(rows * 2, 64);
  EXPECT_GE(cm.Total(bigger), cm.Total(small));
  EXPECT_GE(cm.Total(small), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Rows, SortCostSweep,
                         ::testing::Values(1.0, 10.0, 1000.0, 1e5, 1e7));

TEST(CostModelTest, SortSpillsOnlyWhenLarge) {
  CostModel cm;
  EXPECT_EQ(cm.SortCost(100, 8).io, 0.0);  // fits in sort memory
  EXPECT_GT(cm.SortCost(1e6, 64).io, 0.0);  // spills
}

class ShipCostSweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(ShipCostSweep, MonotoneInRowsAndWidth) {
  CostModel cm;
  auto [rows, width] = GetParam();
  Cost base = cm.ShipCost(rows, width);
  EXPECT_GE(cm.ShipCost(rows * 2, width).comm, base.comm);
  EXPECT_GE(cm.ShipCost(rows, width * 2).comm, base.comm);
  EXPECT_GT(base.comm, 0.0);  // at least one message
}

INSTANTIATE_TEST_SUITE_P(
    RowsWidth, ShipCostSweep,
    ::testing::Values(std::pair{1.0, 8.0}, std::pair{100.0, 64.0},
                      std::pair{1e5, 256.0}));

TEST(CostModelTest, IndexProbeCheaperThanScanForSelectiveMatch) {
  CostModel cm;
  double rows = 100000;
  Cost probe = cm.IndexProbeCost(rows, 5);
  Cost scan = cm.TempScanCost(rows, 64);
  EXPECT_LT(cm.Total(probe), cm.Total(scan));
}

TEST(CostModelTest, BTreePrefixAccessCheaperThanFullScan) {
  CostModel cm;
  TableDef t;
  t.name = "t";
  t.row_count = 100000;
  t.data_pages = 2500;
  EXPECT_LT(cm.Total(cm.BTreeAccessCost(t, 0.01)),
            cm.Total(cm.BTreeAccessCost(t, 1.0)));
}

TEST(CostModelTest, WeightsSteerTotal) {
  CostParams params;
  params.weights = {0.0, 1.0, 0.0};  // CPU only
  CostModel cm(params);
  Cost c{100, 5, 100};
  EXPECT_DOUBLE_EQ(cm.Total(c), 5.0);
}

TEST(CostModelTest, RowWidthUsesCatalogWidths) {
  Catalog cat = MakePaperCatalog();
  Query q = ParseSql(cat, "SELECT EMP.NAME FROM EMP").ValueOrDie();
  CostModel cm;
  ColumnSet narrow{q.ResolveColumn("EMP", "ENO").ValueOrDie()};
  ColumnSet wide = narrow;
  wide.insert(q.ResolveColumn("EMP", "ADDRESS").ValueOrDie());
  EXPECT_LT(cm.RowWidth(q, narrow), cm.RowWidth(q, wide));
  // TID pseudo-columns carry 8 bytes.
  ColumnSet tid{ColumnRef{0, ColumnRef::kTidColumn}};
  EXPECT_DOUBLE_EQ(cm.RowWidth(q, tid), 8.0);
}

}  // namespace
}  // namespace starburst
