// Edge cases of the query evaluator: index probe paths, empty inputs, null
// plans, and schema plumbing.

#include <gtest/gtest.h>

#include "catalog/synthetic.h"
#include "exec/evaluator.h"
#include "sql/parser.h"
#include "storage/datagen.h"
#include "test_util.h"

namespace starburst {
namespace {

class ExecutorEdgeTest : public ::testing::Test {
 protected:
  ExecutorEdgeTest()
      : catalog_(MakePaperCatalog()),
        db_(catalog_),
        query_(ParseSql(catalog_,
                        "SELECT EMP.NAME FROM EMP WHERE EMP.DNO = 2")
                   .ValueOrDie()),
        harness_(query_, DefaultRuleSet()) {
    StoredTable* emp = db_.FindTable("EMP").ValueOrDie();
    for (int64_t e = 0; e < 30; ++e) {
      EXPECT_TRUE(emp->Insert({Datum(e), Datum(e % 5),
                               Datum("n" + std::to_string(e)),
                               Datum(std::string("a")), Datum(int64_t{1})})
                      .ok());
    }
    EXPECT_TRUE(db_.Finalize().ok());
  }

  PlanPtr IndexProbe(PredSet preds) {
    OpArgs args;
    args.Set(arg::kQuantifier, int64_t{0});
    args.Set(arg::kIndex, std::string("EMP_DNO_IX"));
    args.Set(arg::kCols,
             std::vector<ColumnRef>{
                 query_.ResolveColumn("EMP", "DNO").ValueOrDie(),
                 ColumnRef{0, ColumnRef::kTidColumn}});
    args.Set(arg::kPreds, preds);
    return harness_.factory()
        .Make(op::kAccess, flavor::kIndex, {}, std::move(args))
        .ValueOrDie();
  }

  Catalog catalog_;
  Database db_;
  Query query_;
  EngineHarness harness_;
};

TEST_F(ExecutorEdgeTest, IndexEqualityProbeWithLiteral) {
  // DNO = 2 probes the index directly (binary search, not a filter scan).
  auto rs = ExecutePlan(db_, query_, IndexProbe(PredSet::Single(0)));
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs.value().rows.size(), 6u);  // 30 rows, DNO in 0..4
  for (const Tuple& t : rs.value().rows) {
    EXPECT_EQ(t[0].AsInt(), 2);
  }
}

TEST_F(ExecutorEdgeTest, TidsFromIndexResolveThroughGet) {
  OpArgs get;
  get.Set(arg::kQuantifier, int64_t{0});
  get.Set(arg::kCols,
          std::vector<ColumnRef>{
              query_.ResolveColumn("EMP", "NAME").ValueOrDie()});
  get.Set(arg::kPreds, PredSet{});
  PlanPtr plan = harness_.factory()
                     .Make(op::kGet, "", {IndexProbe(PredSet::Single(0))},
                           std::move(get))
                     .ValueOrDie();
  auto rs = ExecutePlan(db_, query_, plan);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs.value().rows.size(), 6u);
  // NAME values correspond to rows 2,7,12,...
  std::set<std::string> names;
  for (const Tuple& t : rs.value().rows) {
    names.insert(t.back().AsString());
  }
  EXPECT_TRUE(names.count("n2"));
  EXPECT_TRUE(names.count("n27"));
}

TEST_F(ExecutorEdgeTest, NullPlanIsRejected) {
  auto rs = ExecutePlan(db_, query_, nullptr);
  EXPECT_FALSE(rs.ok());
}

TEST_F(ExecutorEdgeTest, EmptyTableProducesEmptyResults) {
  Catalog cat = MakePaperCatalog();
  Database empty_db(cat);
  ASSERT_TRUE(empty_db.Finalize().ok());
  auto rs = ExecutePlan(empty_db, query_, IndexProbe(PredSet::Single(0)));
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_TRUE(rs.value().rows.empty());
}

TEST_F(ExecutorEdgeTest, FormatResultTruncates) {
  auto rs = ExecutePlan(db_, query_, IndexProbe(PredSet{}));
  ASSERT_TRUE(rs.ok());
  std::string text = FormatResult(rs.value(), query_, 3);
  EXPECT_NE(text.find("rows total"), std::string::npos);
  EXPECT_NE(text.find("EMP.DNO"), std::string::npos);
}

TEST_F(ExecutorEdgeTest, SchemaOfMirrorsEveryOperator) {
  Executor exec(db_, query_);
  PlanPtr probe = IndexProbe(PredSet{});
  auto schema = exec.SchemaOf(*probe);
  ASSERT_TRUE(schema.ok());
  ASSERT_EQ(schema.value().size(), 2u);
  EXPECT_TRUE(schema.value()[1].is_tid());
}

}  // namespace
}  // namespace starburst
